"""NIC register files and their interconnect-dependent access costs.

The "I/O reg acc" segment of Fig. 11 is where the three architectures
differ most for small packets:

* **PCIe NIC** — a register *read* is a blocking non-posted round trip
  over the link (~0.5–1 us); a register *write* posts but still costs
  the CPU a write-combining drain.
* **integrated NIC** — registers sit on the die; accesses cost tens of
  cycles.
* **NetDIMM** — registers are reached over the memory channel with the
  NVDIMM-P asynchronous protocol: far faster than PCIe, slightly slower
  than on-die ("polling NetDIMM is more efficient than polling a PCIe
  NIC", Sec. 4.2.2).

Every register file exposes the same pair of process-style operations
so driver models are interconnect-agnostic.
"""

from __future__ import annotations

from typing import Dict

from repro.params import NVDIMMPParams, DRAMTimingParams
from repro.pcie.link import PCIeLink
from repro.sim import Component, Simulator
from repro.units import ns


class RegisterFile(Component):
    """Base register file: a named map of integer registers.

    Subclasses define the *timing* of access; the value storage is
    shared so driver and device models observe each other's writes.
    """

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self._values: Dict[str, int] = {}

    def peek(self, register: str) -> int:
        """Zero-time read for device-internal logic."""
        return self._values.get(register, 0)

    def poke(self, register: str, value: int) -> None:
        """Zero-time write for device-internal logic."""
        self._values[register] = value

    def read(self, register: str):
        """Process-style timed CPU read: ``value = yield from rf.read(r)``."""
        raise NotImplementedError

    def write(self, register: str, value: int):
        """Process-style timed CPU write: ``yield from rf.write(r, v)``.

        The generator completes when the CPU may continue (posted writes
        release the CPU before the device observes the value; the model
        applies the value at CPU-release time, which is conservative for
        polled drivers).
        """
        raise NotImplementedError


class PCIeRegisterFile(RegisterFile):
    """Registers behind a PCIe link (the discrete NIC)."""

    def __init__(self, sim: Simulator, name: str, link: PCIeLink):
        super().__init__(sim, name)
        self.link = link

    def read(self, register: str):
        start = self.now
        yield self.link.mmio_read()
        self.stats.count("reads")
        self.stats.sample("read_ns", (self.now - start) / 1000)
        return self.peek(register)

    def write(self, register: str, value: int):
        yield self.link.mmio_write_cpu_cost()
        # The TLP continues to the device asynchronously.
        self.link.mmio_write()
        self.poke(register, value)
        self.stats.count("writes")


class OnDieRegisterFile(RegisterFile):
    """Registers of a CPU-integrated NIC: uncached on-die access."""

    def __init__(self, sim: Simulator, name: str, access_latency: int = ns(20)):
        super().__init__(sim, name)
        self.access_latency = access_latency

    def read(self, register: str):
        yield self.access_latency
        self.stats.count("reads")
        return self.peek(register)

    def write(self, register: str, value: int):
        yield self.access_latency
        self.poke(register, value)
        self.stats.count("writes")


class MemoryChannelRegisterFile(RegisterFile):
    """NetDIMM registers reached over the memory channel.

    A read is one asynchronous NVDIMM-P transaction against the buffer
    device's register space (no DRAM media access — the buffer device
    answers immediately, so RDY follows XRD after the controller
    pipeline).  A write is a posted channel write.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        timing: DRAMTimingParams,
        protocol: NVDIMMPParams,
        ncontroller_latency: int,
    ):
        super().__init__(sim, name)
        self.timing = timing
        self.protocol = protocol
        self.ncontroller_latency = ncontroller_latency

    def register_read_latency(self) -> int:
        """Closed-form cost of one register read."""
        return (
            self.timing.tCMD
            + self.protocol.xrd_cost
            + self.ncontroller_latency
            + self.protocol.rdy_to_send
            + self.protocol.send_to_data
            + self.timing.tBURST
        )

    def register_write_latency(self) -> int:
        """Closed-form CPU-side cost of one posted register write."""
        return self.timing.tCMD + self.protocol.write_post_cost + self.timing.tBURST

    def read(self, register: str):
        yield self.register_read_latency()
        self.stats.count("reads")
        return self.peek(register)

    def write(self, register: str, value: int):
        yield self.register_write_latency()
        self.poke(register, value)
        self.stats.count("writes")
