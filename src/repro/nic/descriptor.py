"""Descriptor rings (Sec. 2.1).

An Ethernet NIC and its driver communicate through circular rings of
descriptors in memory: the driver produces TX descriptors and consumes
RX descriptors; the NIC does the reverse.  Each descriptor points at a
DMA buffer and carries size/status flags.  The ring decouples producer
and consumer rates; its occupancy discipline (head/tail pointers, full
when head+size == tail) is the standard e1000-style scheme the NetDIMM
driver inherits (Sec. 4.2.2: "We use Intel e1000 GbE driver as a base").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.units import CACHELINE


class RingFullError(RuntimeError):
    """Producing into a full ring."""


@dataclass
class Descriptor:
    """One descriptor: a buffer pointer plus size/status."""

    buffer_address: int = 0
    size_bytes: int = 0
    ready: bool = False
    """TX: set by the driver when the packet may be sent.
    RX: set by the NIC when a packet has landed in the buffer."""

    cookie: object = None
    """Opaque driver payload (the SKB/packet object in this model)."""

    DESCRIPTOR_BYTES = 16
    """e1000-style 16 B descriptors: 8 B address + 8 B length/status."""


@dataclass
class DescriptorRing:
    """A circular descriptor ring with head/tail indices.

    ``head`` is the producer cursor, ``tail`` the consumer cursor.  The
    ring is empty when ``head == tail`` and full when advancing ``head``
    would collide with ``tail`` (one slot is sacrificed, as in e1000).
    """

    size: int = 256
    base_address: int = 0
    head: int = 0
    tail: int = 0
    slots: List[Descriptor] = field(default_factory=list)

    def __post_init__(self):
        if self.size < 2:
            raise ValueError("ring needs at least 2 slots")
        if not self.slots:
            self.slots = [Descriptor() for _ in range(self.size)]
        elif len(self.slots) != self.size:
            raise ValueError("slots length must match ring size")

    @property
    def occupancy(self) -> int:
        """Produced-but-not-consumed descriptors."""
        return (self.head - self.tail) % self.size

    @property
    def is_empty(self) -> bool:
        """No pending descriptors."""
        return self.head == self.tail

    @property
    def is_full(self) -> bool:
        """No free slot for the producer."""
        return (self.head + 1) % self.size == self.tail

    def descriptor_address(self, index: int) -> int:
        """Physical address of slot ``index`` (descriptors are packed)."""
        return self.base_address + (index % self.size) * Descriptor.DESCRIPTOR_BYTES

    @property
    def ring_bytes(self) -> int:
        """Memory footprint of the ring itself."""
        return self.size * Descriptor.DESCRIPTOR_BYTES

    @property
    def ring_cachelines(self) -> int:
        """Cachelines the descriptor array spans."""
        return -(-self.ring_bytes // CACHELINE)

    def produce(
        self, buffer_address: int, size_bytes: int, cookie: object = None
    ) -> int:
        """Fill the next descriptor; returns its index.

        Raises :class:`RingFullError` when the ring is full (the caller
        models backpressure).
        """
        if self.is_full:
            raise RingFullError("descriptor ring full")
        index = self.head
        slot = self.slots[index]
        slot.buffer_address = buffer_address
        slot.size_bytes = size_bytes
        slot.ready = True
        slot.cookie = cookie
        self.head = (self.head + 1) % self.size
        return index

    def peek(self) -> Optional[Descriptor]:
        """The next descriptor to consume, or None when empty."""
        if self.is_empty:
            return None
        return self.slots[self.tail]

    def consume(self) -> Descriptor:
        """Take the next descriptor (raises when empty)."""
        if self.is_empty:
            raise IndexError("consuming from empty ring")
        slot = self.slots[self.tail]
        slot.ready = False
        self.tail = (self.tail + 1) % self.size
        return slot
