"""DMA-engine memory-access behaviour, including the Fig. 7 burst trace.

Fig. 7 of the paper plots the relative address and arrival time of the
memory requests a 40GbE NIC's DMA engine generates while receiving six
1514 B packets: each packet arrival produces a burst of 24 cacheline
writes (24 x 64 B = 1536 B, the 1514 B packet rounded up) to
consecutive DMA-buffer addresses, with the bursts separated by the
packet inter-arrival time.  This spatial/temporal regularity is the
observation that justifies nCache + a simple next-line nPrefetcher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.units import CACHELINE, Gbps, cachelines, ns, transfer_time


@dataclass(frozen=True)
class DMABurstTrace:
    """The (time, address) points of a DMA access trace."""

    accesses: Tuple[Tuple[int, int], ...]
    """Sequence of (arrival_tick, address) pairs."""

    @property
    def count(self) -> int:
        """Total accesses."""
        return len(self.accesses)

    def bursts(self, gap_threshold: int) -> List[List[Tuple[int, int]]]:
        """Split the trace into bursts at inter-access gaps > threshold."""
        groups: List[List[Tuple[int, int]]] = []
        current: List[Tuple[int, int]] = []
        previous_time = None
        for time, address in self.accesses:
            if previous_time is not None and time - previous_time > gap_threshold:
                groups.append(current)
                current = []
            current.append((time, address))
            previous_time = time
        if current:
            groups.append(current)
        return groups

    def burst_duration(self, burst_index: int, gap_threshold: int) -> int:
        """Span of one burst (first to last access), in ticks.

        The paper measures 143 ns for the third packet's 24-line burst.
        """
        burst = self.bursts(gap_threshold)[burst_index]
        return burst[-1][0] - burst[0][0]


def dma_burst_trace(
    packet_sizes: List[int],
    link_bytes_per_ps: float = Gbps(40),
    base_address: int = 0,
    start_time: int = 0,
    per_line_interval: int = ns(6),
    ethernet_overhead_bytes: int = 24,
) -> DMABurstTrace:
    """Generate the DMA write trace for a sequence of received packets.

    Packets arrive back-to-back at line rate (the paper receives six
    1514 B packets at 40 Gb/s).  Each packet triggers a burst of
    cacheline writes to consecutive addresses in its freshly-allocated
    DMA buffer; within a burst, lines issue every ``per_line_interval``
    (the DMA engine's internal pipelining — 24 lines over ~143 ns is
    ~6 ns per line).
    """
    accesses: List[Tuple[int, int]] = []
    arrival = start_time
    address = base_address
    for size in packet_sizes:
        lines = cachelines(size)
        for line in range(lines):
            accesses.append((arrival + line * per_line_interval, address))
            address += CACHELINE
        # Buffers are line-granular; the next packet's buffer starts on
        # the next cacheline boundary.
        wire_time = transfer_time(size + ethernet_overhead_bytes, link_bytes_per_ps)
        arrival += wire_time
    return DMABurstTrace(accesses=tuple(accesses))
