"""Switch model.

The paper's dist-gem5 switch model [58] reduces to a per-hop forwarding
latency (Table 1: 100 ns default; Fig. 12(a) sweeps 25–200 ns) plus the
egress link's serialization.  We model a cut-through switch: forwarding
starts after the header is in, so per-hop cost is the switch latency
plus one egress serialization (shared egress ports queue).

A switch may additionally be given a finite-depth output queue
(``queue_depth``).  A packet then occupies one slot on its egress port
from ingress until its serialization onto the egress link completes;
when a port's queue is full, further packets stall at ingress until a
slot frees (lossless PFC-style backpressure, the behavior EDM-style
fabric studies depend on).  ``queue_depth=None`` keeps the legacy
unbounded behavior and its exact event sequence.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import Deque, Dict, Optional

from repro.faults.spec import FAULT_SWITCH_MODES
from repro.params import DEFAULT, NetworkParams
from repro.sim import Component, Future, Resource, Simulator
from repro.units import transfer_time


class Switch(Component):
    """A named switch with contended (optionally finite-depth) egress ports."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        params: Optional[NetworkParams] = None,
        queue_depth: Optional[int] = None,
        drop_mode: str = "backpressure",
    ):
        super().__init__(sim, name)
        self.params = params if params is not None else DEFAULT.network
        if queue_depth is not None and queue_depth <= 0:
            raise ValueError(f"queue_depth must be positive, got {queue_depth}")
        if drop_mode not in FAULT_SWITCH_MODES:
            raise ValueError(
                f"unknown drop_mode {drop_mode!r} "
                f"(expected one of {FAULT_SWITCH_MODES})"
            )
        self.queue_depth = queue_depth
        self.drop_mode = drop_mode
        self._egress_ports: Dict[str, Resource] = {}
        self._occupancy: Dict[str, int] = {}
        self._slot_waiters: Dict[str, Deque[Future]] = {}
        # Batched drain mode (see repro.sim.engine): the egress claim is
        # inlined into forward_transit instead of delegating through
        # Resource.use — identical event sequence, two fewer generator
        # frames per hop.  The serialization memo is mode-independent
        # (transfer_time of a given size never changes).
        self._batch = bool(sim.batch)
        self._serialization_cache: Dict[int, int] = {}
        # Hybrid-fidelity coupling (repro.flow): the owning ClosFabric
        # points every switch at the scenario's shared FlowLoadMap and
        # its own topology node name when flow-level traffic exists.
        # None (the default) keeps the pure packet path untouched.
        self.flow_load = None
        self.topo_node: Optional[str] = None

    def _egress(self, port: str) -> Resource:
        resource = self._egress_ports.get(port)
        if resource is None:
            resource = Resource(self.sim, name=f"{self.name}.{port}")
            self._egress_ports[port] = resource
        return resource

    def hop_latency(self, size_bytes: int) -> int:
        """Closed-form unloaded per-hop latency (cut-through).

        Switch pipeline + egress serialization of the framed packet +
        egress cable propagation.
        """
        return (
            self.params.switch_latency
            + transfer_time(
                self.params.framed_bytes(size_bytes), self.params.link_bytes_per_ps
            )
            + self.params.propagation
        )

    def forward(self, size_bytes: int, egress_port: str) -> Future:
        """Event-driven forwarding through a (possibly contended) port."""
        done = self.sim.future()
        self.sim.spawn(
            self._forward_body(size_bytes, egress_port, done),
            name=f"{self.name}.fwd",
        )
        return done

    def forward_transit(
        self, size_bytes: int, egress_port: str, tracer=None, uid=None
    ):
        """Inline (``yield from``) form of :meth:`forward`.

        Same event sequence without spawning a process per hop — the
        fabric transit path runs one of these per switch per packet.
        Returns True when the frame was forwarded; False when a full
        output queue in ``lossy`` drop mode ate it (cut-through: the
        overflow is decided at ingress, before any time is charged).

        ``tracer``/``uid`` (a :class:`repro.telemetry.SpanTracer` and
        the packet's flow uid) split the hop into two spans: the queue
        wait on a full output queue (omitted when zero) and the
        transmit (pipeline + egress serialization + propagation).
        Tracing only records timestamps — the event order is identical
        with it on or off.
        """
        start = self.now
        flow_load = self.flow_load
        if flow_load is not None:
            serialization = self._serialization_cache.get(size_bytes)
            if serialization is None:
                serialization = transfer_time(
                    self.params.framed_bytes(size_bytes),
                    self.params.link_bytes_per_ps,
                )
                self._serialization_cache[size_bytes] = serialization
            # Flow-level background utilization of this egress link,
            # priced as the M/D/1 mean wait an extra frame would see.
            # Charged at ingress (before the slot claim) like any other
            # occupancy; zero load yields nothing, so the unloaded
            # event sequence is byte-identical to the pure packet path.
            wait = flow_load.queue_wait((self.topo_node, egress_port), serialization)
            if wait:
                yield wait
        if self.queue_depth is not None:
            if self.drop_mode == "lossy":
                if self._occupancy.get(egress_port, 0) >= self.queue_depth:
                    self.stats.count("overflow_drops")
                    # The drop happens at ingress, before any span is
                    # opened — record it explicitly or the timeline
                    # undercounts traffic under overflow.
                    sim_tracer = self.sim.tracer
                    if sim_tracer is not None:
                        sim_tracer.counter(
                            f"{self.name}.{egress_port}.overflow_drops",
                            self.now,
                            self.stats.get_counter("overflow_drops"),
                        )
                        if uid is not None:
                            sim_tracer.instant(
                                uid,
                                f"{self.name} drop",
                                "switch",
                                self.now,
                                {"port": egress_port},
                            )
                    return False
                self._take_slot(egress_port)
            else:
                yield from self._claim_slot(egress_port)
        if tracer is not None and self.now > start:
            tracer.add(uid, f"{self.name} queue", "switch", start, self.now)
        xmit_start = self.now
        yield self.params.switch_latency
        serialization = self._serialization_cache.get(size_bytes)
        if serialization is None:
            serialization = transfer_time(
                self.params.framed_bytes(size_bytes), self.params.link_bytes_per_ps
            )
            self._serialization_cache[size_bytes] = serialization
        if self._batch:
            # Inlined Resource.use(serialization) on the egress port:
            # the exact acquire/yield/recycle/hold/release sequence of
            # repro.sim.resource.Resource.use, minus the delegated
            # generator frame per hop.
            egress = self._egress(egress_port)
            sim = self.sim
            pool = sim._future_pool
            future = pool.pop() if pool else Future(sim)
            request_time = sim._now
            if not egress._busy and not egress._waiters:
                egress._busy = True
                egress.total_acquisitions += 1
                future.set_result(request_time)
            else:
                egress._ticket += 1
                insort(egress._waiters, (0, egress._ticket, future))
            granted_at = yield future
            sim.recycle(future)
            egress.total_wait_ticks += granted_at - request_time
            if serialization:
                yield serialization
            egress.release()
        else:
            yield from self._egress(egress_port).use(serialization)
        if self.queue_depth is not None:
            self._release_slot(egress_port)
        yield self.params.propagation
        self.stats.count("forwarded")
        self.stats.sample("hop_ns", (self.now - start) / 1000)
        if tracer is not None:
            tracer.add(uid, self.name, "switch", xmit_start, self.now)
        return True

    def _forward_body(self, size_bytes: int, egress_port: str, done: Future):
        forwarded = yield from self.forward_transit(size_bytes, egress_port)
        done.set_result(forwarded)

    # -- finite output queue --------------------------------------------------

    def _take_slot(self, port: str) -> None:
        """Occupy one output-queue slot on ``port`` (space must exist)."""
        held = self._occupancy.get(port, 0) + 1
        self._occupancy[port] = held
        self.stats.sample("queue_depth", held)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.counter(f"{self.name}.{port}.queue_depth", self.sim.now, held)

    def _claim_slot(self, port: str):
        """Take one output-queue slot on ``port``, stalling while full."""
        occupancy = self._occupancy
        while occupancy.get(port, 0) >= self.queue_depth:
            self.stats.count("egress_stalls")
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.counter(
                    f"{self.name}.{port}.egress_stalls",
                    self.sim.now,
                    self.stats.get_counter("egress_stalls"),
                )
            waiter = self.sim.future()
            self._slot_waiters.setdefault(port, deque()).append(waiter)
            yield waiter
        self._take_slot(port)

    def _release_slot(self, port: str) -> None:
        """Free one slot and wake the oldest stalled ingress, if any."""
        held = self._occupancy[port] - 1
        self._occupancy[port] = held
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.counter(f"{self.name}.{port}.queue_depth", self.sim.now, held)
        waiters = self._slot_waiters.get(port)
        if waiters:
            waiters.popleft().set_result(None)
