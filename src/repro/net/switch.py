"""Switch model.

The paper's dist-gem5 switch model [58] reduces to a per-hop forwarding
latency (Table 1: 100 ns default; Fig. 12(a) sweeps 25–200 ns) plus the
egress link's serialization.  We model a cut-through switch: forwarding
starts after the header is in, so per-hop cost is the switch latency
plus one egress serialization (shared egress ports queue).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.params import NetworkParams
from repro.sim import Component, Future, Resource, Simulator
from repro.units import transfer_time


class Switch(Component):
    """A named switch with contended egress ports."""

    def __init__(self, sim: Simulator, name: str, params: Optional[NetworkParams] = None):
        super().__init__(sim, name)
        self.params = params or NetworkParams()
        self._egress_ports: Dict[str, Resource] = {}

    def _egress(self, port: str) -> Resource:
        resource = self._egress_ports.get(port)
        if resource is None:
            resource = Resource(self.sim, name=f"{self.name}.{port}")
            self._egress_ports[port] = resource
        return resource

    def hop_latency(self, size_bytes: int) -> int:
        """Closed-form unloaded per-hop latency (cut-through).

        Switch pipeline + egress serialization of the framed packet +
        egress cable propagation.
        """
        framed = max(size_bytes, self.params.min_frame_bytes) + (
            self.params.ethernet_overhead_bytes
        )
        return (
            self.params.switch_latency
            + transfer_time(framed, self.params.link_bytes_per_ps)
            + self.params.propagation
        )

    def forward(self, size_bytes: int, egress_port: str) -> Future:
        """Event-driven forwarding through a (possibly contended) port."""
        done = self.sim.future()
        self.sim.spawn(
            self._forward_body(size_bytes, egress_port, done),
            name=f"{self.name}.fwd",
        )
        return done

    def _forward_body(self, size_bytes: int, egress_port: str, done: Future):
        start = self.now
        yield self.params.switch_latency
        framed = max(size_bytes, self.params.min_frame_bytes) + (
            self.params.ethernet_overhead_bytes
        )
        serialization = transfer_time(framed, self.params.link_bytes_per_ps)
        yield from self._egress(egress_port).use(serialization)
        yield self.params.propagation
        self.stats.count("forwarded")
        self.stats.sample("hop_ns", (self.now - start) / 1000)
        done.set_result(None)
