"""Switch model.

The paper's dist-gem5 switch model [58] reduces to a per-hop forwarding
latency (Table 1: 100 ns default; Fig. 12(a) sweeps 25–200 ns) plus the
egress link's serialization.  We model a cut-through switch: forwarding
starts after the header is in, so per-hop cost is the switch latency
plus one egress serialization (shared egress ports queue).

A switch may additionally be given a finite-depth output queue
(``queue_depth``).  A packet then occupies one slot on its egress port
from ingress until its serialization onto the egress link completes;
when a port's queue is full, further packets stall at ingress until a
slot frees (lossless PFC-style backpressure, the behavior EDM-style
fabric studies depend on).  ``queue_depth=None`` keeps the legacy
unbounded behavior and its exact event sequence.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.params import NetworkParams
from repro.sim import Component, Future, Resource, Simulator
from repro.units import transfer_time


class Switch(Component):
    """A named switch with contended (optionally finite-depth) egress ports."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        params: Optional[NetworkParams] = None,
        queue_depth: Optional[int] = None,
    ):
        super().__init__(sim, name)
        self.params = params or NetworkParams()
        if queue_depth is not None and queue_depth <= 0:
            raise ValueError(f"queue_depth must be positive, got {queue_depth}")
        self.queue_depth = queue_depth
        self._egress_ports: Dict[str, Resource] = {}
        self._occupancy: Dict[str, int] = {}
        self._slot_waiters: Dict[str, Deque[Future]] = {}

    def _egress(self, port: str) -> Resource:
        resource = self._egress_ports.get(port)
        if resource is None:
            resource = Resource(self.sim, name=f"{self.name}.{port}")
            self._egress_ports[port] = resource
        return resource

    def hop_latency(self, size_bytes: int) -> int:
        """Closed-form unloaded per-hop latency (cut-through).

        Switch pipeline + egress serialization of the framed packet +
        egress cable propagation.
        """
        framed = max(size_bytes, self.params.min_frame_bytes) + (
            self.params.ethernet_overhead_bytes
        )
        return (
            self.params.switch_latency
            + transfer_time(framed, self.params.link_bytes_per_ps)
            + self.params.propagation
        )

    def forward(self, size_bytes: int, egress_port: str) -> Future:
        """Event-driven forwarding through a (possibly contended) port."""
        done = self.sim.future()
        self.sim.spawn(
            self._forward_body(size_bytes, egress_port, done),
            name=f"{self.name}.fwd",
        )
        return done

    def forward_transit(self, size_bytes: int, egress_port: str):
        """Inline (``yield from``) form of :meth:`forward`.

        Same event sequence without spawning a process per hop — the
        fabric transit path runs one of these per switch per packet.
        """
        start = self.now
        if self.queue_depth is not None:
            yield from self._claim_slot(egress_port)
        yield self.params.switch_latency
        framed = max(size_bytes, self.params.min_frame_bytes) + (
            self.params.ethernet_overhead_bytes
        )
        serialization = transfer_time(framed, self.params.link_bytes_per_ps)
        yield from self._egress(egress_port).use(serialization)
        if self.queue_depth is not None:
            self._release_slot(egress_port)
        yield self.params.propagation
        self.stats.count("forwarded")
        self.stats.sample("hop_ns", (self.now - start) / 1000)

    def _forward_body(self, size_bytes: int, egress_port: str, done: Future):
        yield from self.forward_transit(size_bytes, egress_port)
        done.set_result(None)

    # -- finite output queue --------------------------------------------------

    def _claim_slot(self, port: str):
        """Take one output-queue slot on ``port``, stalling while full."""
        occupancy = self._occupancy
        while occupancy.get(port, 0) >= self.queue_depth:
            self.stats.count("egress_stalls")
            waiter = self.sim.future()
            self._slot_waiters.setdefault(port, deque()).append(waiter)
            yield waiter
        held = occupancy.get(port, 0) + 1
        occupancy[port] = held
        self.stats.sample("queue_depth", held)

    def _release_slot(self, port: str) -> None:
        """Free one slot and wake the oldest stalled ingress, if any."""
        self._occupancy[port] -= 1
        waiters = self._slot_waiters.get(port)
        if waiters:
            waiters.popleft().set_result(None)
