"""Event-driven fabric: packets live-traverse instantiated switches.

The analytical path model (:meth:`repro.net.topology.ClosTopology.path_latency`)
adds per-hop constants — fine at zero load, blind to queueing.  This
module instantiates the fabric for real inside one simulator:

* :class:`DirectFabric` — the degenerate two-host fabric: one
  point-to-point :class:`~repro.net.link.EthernetWire`.  Reproduces the
  exact event sequence ``measure_one_way`` has always used, so the
  one-way experiment is the trivial two-node scenario.
* :class:`ClosFabric` — one :class:`~repro.net.switch.Switch` per
  switch/router of a :class:`~repro.net.topology.ClosTopology`, each
  with a finite-depth output queue, connected by links with real
  serialization and propagation.  Packets traverse hop by hop, so
  egress contention (incast!) and switch-queue backpressure emerge from
  the event order instead of being assumed away.

Both expose ``transit(packet, src_host, dst_host)`` as a generator to be
driven with ``yield from`` inside a flow process; the elapsed transit
time is charged to the packet's ``wire`` breakdown segment, matching the
segment taxonomy of Fig. 11.

At zero load a clos transit reduces exactly to the analytical sum:
sender MAC/PHY + first-link serialization + propagation, then per
switch hop the switch pipeline + egress serialization + propagation
(+ the WAN propagation once on the inter-DC edge link), then receiver
MAC/PHY — i.e. ``endhost wire pieces + path_latency``.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.faults.engine import OK, FaultInjector
from repro.net.link import EthernetWire
from repro.net.packet import Packet
from repro.net.switch import Switch
from repro.net.topology import INTER_DC_WAN_PROPAGATION, ClosTopology
from repro.params import NetworkParams
from repro.sim import Component, Future, Resource, Simulator
from repro.units import transfer_time


class DirectFabric(Component):
    """Two hosts on one point-to-point wire — the degenerate fabric."""

    kind = "direct"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        hosts: Tuple[str, str],
        *,
        params: Optional[NetworkParams] = None,
        injector: Optional[FaultInjector] = None,
    ):
        super().__init__(sim, name)
        if len(hosts) != 2 or hosts[0] == hosts[1]:
            raise ValueError(f"direct fabric needs two distinct hosts, got {hosts!r}")
        self.params = params or NetworkParams()
        self.hosts = tuple(hosts)
        self.injector = injector
        self.wire = EthernetWire(sim, f"{name}.wire", params=self.params)

    def host_names(self) -> List[str]:
        """The two attachable host names."""
        return list(self.hosts)

    def hop_count(self, src: str, dst: str) -> int:
        """Switch hops between two hosts (always zero here)."""
        self._check(src, dst)
        return 0

    def _check(self, src: str, dst: str) -> None:
        if {src, dst} != set(self.hosts):
            raise ValueError(
                f"direct fabric connects {self.hosts!r}, not {src!r}->{dst!r}"
            )

    def transit(self, packet: Packet, src: str, dst: str):
        """Carry ``packet`` from ``src`` to ``dst`` (``yield from`` this).

        Returns True when the packet arrived; False when the fault
        injector ate it on the wire (the attempt still consumed the
        full wire traversal — the sender only learns via timeout).
        """
        self._check(src, dst)
        start = self.now
        # The wire is full duplex: each direction has its own bus.
        yield self.wire.transmit(packet.size_bytes, reverse=src == self.hosts[1])
        packet.breakdown.add("wire", self.now - start)
        tracer = self.sim.tracer
        if tracer is not None and packet.uid is not None:
            tracer.add(packet.uid, "wire", "net", start, self.now)
        if self.injector is not None:
            if self.injector.link_verdict(f"{src}->{dst}", self.now, packet) != OK:
                return False
        return True


class ClosFabric(Component):
    """A live clos fabric: one queued switch per topology switch node."""

    kind = "clos"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        topology: Optional[ClosTopology] = None,
        *,
        queue_depth: Optional[int] = 16,
        drop_mode: str = "backpressure",
        injector: Optional[FaultInjector] = None,
    ):
        super().__init__(sim, name)
        self.topology = topology or ClosTopology()
        self.params = self.topology.params
        self.queue_depth = queue_depth
        self.drop_mode = drop_mode
        self.injector = injector
        graph = self.topology.graph
        self.switches: Dict[str, Switch] = {
            node: Switch(
                sim,
                f"{name}.{node}",
                params=self.params,
                queue_depth=queue_depth,
                drop_mode=drop_mode,
            )
            for node, data in sorted(graph.nodes(data=True))
            if data["tier"] != "host"
        }
        # Each host's uplink to its ToR serializes that host's departures.
        self._uplinks: Dict[str, Resource] = {}
        # (src, dst) -> all equal-cost paths, sorted for determinism.
        self._route_cache: Dict[Tuple[str, str], List[List[str]]] = {}
        # (src, dst, path index) -> precomputed per-hop transit plan:
        # the first-link label plus (switch, next_hop, wan?, label) per
        # switch hop, so transit never re-reads graph node attributes
        # or rebuilds link labels per packet.
        self._hop_plans: Dict[Tuple[str, str, int], tuple] = {}
        self._serialization_cache: Dict[int, int] = {}
        # Batched drain mode (see repro.sim.engine): the uplink claim is
        # inlined into transit instead of delegating through
        # Resource.use — identical event sequence, one fewer generator
        # frame per packet.
        self._batch = bool(sim.batch)
        # Hybrid-fidelity coupling (repro.flow): set by
        # enable_flow_coupling when a scenario carries flow-level
        # traffic; None keeps the pure packet path byte-identical.
        self.flow_load = None

    def enable_flow_coupling(self):
        """Attach a shared :class:`repro.flow.FlowLoadMap` (idempotent).

        Every switch gets the map plus its own topology node name, so
        packet-level forwards pay the analytical queueing delay of the
        flow-level background load on their egress link; the host
        uplink pays it in :meth:`transit`.  At zero recorded load the
        coupling adds zero delay *and zero events* — the foreground
        event sequence stays byte-identical to an all-packet run.
        """
        load = self.flow_load
        if load is None:
            from repro.flow.model import FlowLoadMap

            load = FlowLoadMap(self.params.link_bytes_per_ps)
            self.flow_load = load
            for node, switch in self.switches.items():
                switch.flow_load = load
                switch.topo_node = node
        return load

    def host_names(self) -> List[str]:
        """All attachable host names, sorted."""
        return self.topology.hosts()

    def _uplink(self, host: str) -> Resource:
        uplink = self._uplinks.get(host)
        if uplink is None:
            uplink = Resource(self.sim, name=f"{self.name}.{host}.uplink")
            self._uplinks[host] = uplink
        return uplink

    def route_paths(self, src: str, dst: str) -> List[List[str]]:
        """All equal-cost shortest paths between two hosts, sorted.

        Enumerated once per host pair and cached; both per-packet ECMP
        hashing (:meth:`route`) and flow-level demand spreading
        (:class:`repro.flow.FlowSource`) read the same list, so the two
        fidelities agree on what the fabric looks like.
        """
        paths = self._route_cache.get((src, dst))
        if paths is None:
            paths = sorted(nx.all_shortest_paths(self.topology.graph, src, dst))
            self._route_cache[(src, dst)] = paths
        return paths

    def route(self, src: str, dst: str, flow_id: int = 0) -> List[str]:
        """The (deterministic) path for one flow: ECMP by flow id.

        All equal-cost shortest paths are enumerated once per host pair
        and a flow hashes onto one of them, so concurrent flows spread
        over the fabric tier the way ECMP routing would.
        """
        paths = self.route_paths(src, dst)
        return paths[flow_id % len(paths)]

    def hop_count(self, src: str, dst: str) -> int:
        """Switch hops on the flow-0 path."""
        return len(self.route(src, dst)) - 2

    def _serialization(self, size_bytes: int) -> int:
        ticks = self._serialization_cache.get(size_bytes)
        if ticks is None:
            ticks = transfer_time(
                self.params.framed_bytes(size_bytes), self.params.link_bytes_per_ps
            )
            self._serialization_cache[size_bytes] = ticks
        return ticks

    def _transit_plan(self, src: str, dst: str, flow_id: int) -> tuple:
        """``(first_link_label, first_hop, hops)`` for one flow's ECMP path.

        ``first_hop`` is the ToR the host uplink lands on (the flow-load
        key of the uplink); ``hops`` is ``(switch, next_hop, wan_extra,
        link_label)`` per switch on the path, with the inter-DC WAN test
        (both endpoints edge-tier) resolved once instead of per packet.
        """
        paths = self.route_paths(src, dst)
        index = flow_id % len(paths)
        key = (src, dst, index)
        plan = self._hop_plans.get(key)
        if plan is None:
            path = paths[index]
            tiers = self.topology.graph.nodes
            hops = []
            for node, next_hop in zip(path[1:-1], path[2:]):
                wan_extra = (
                    tiers[node]["tier"] == "edge"
                    and next_hop in self.switches
                    and tiers[next_hop]["tier"] == "edge"
                )
                hops.append(
                    (self.switches[node], next_hop, wan_extra, f"{node}->{next_hop}")
                )
            plan = (f"{src}->{path[1]}", path[1], tuple(hops))
            self._hop_plans[key] = plan
        return plan

    def transit(self, packet: Packet, src: str, dst: str):
        """Carry ``packet`` hop by hop from ``src`` to ``dst``.

        Drive with ``yield from`` inside a flow process.  The elapsed
        time — including any egress queueing and backpressure stalls —
        is charged to the ``wire`` breakdown segment.

        Returns True on delivery; False when a link fault or a lossy
        switch overflow ate the packet mid-path.  A faulted attempt
        still pays the traversal up to the failing hop — the sender
        only learns about the loss via its retransmission timer.
        """
        start = self.now
        first_link, first_hop, hops = self._transit_plan(src, dst, packet.flow_id)
        injector = self.injector
        tracer = self.sim.tracer if packet.uid is not None else None
        delivered = True
        # Sender NIC: MAC/PHY, then the host uplink serializes departures.
        yield self.params.mac_phy_latency
        serialization = self._serialization(packet.size_bytes)
        flow_load = self.flow_load
        if flow_load is not None:
            # Flow-level background load on the host uplink shows up as
            # an analytical queue wait before the departure serializes.
            # Zero load → zero wait → no event: the unloaded hybrid
            # path is byte-identical to the pure packet path.
            wait = flow_load.queue_wait((src, first_hop), serialization)
            if wait:
                yield wait
        if self._batch:
            # Inlined Resource.use(serialization) on the host uplink —
            # the exact acquire/yield/recycle/hold/release sequence of
            # repro.sim.resource.Resource.use without the delegated
            # generator frame.
            uplink = self._uplink(src)
            sim = self.sim
            pool = sim._future_pool
            future = pool.pop() if pool else Future(sim)
            request_time = sim._now
            if not uplink._busy and not uplink._waiters:
                uplink._busy = True
                uplink.total_acquisitions += 1
                future.set_result(request_time)
            else:
                uplink._ticket += 1
                insort(uplink._waiters, (0, uplink._ticket, future))
            granted_at = yield future
            sim.recycle(future)
            uplink.total_wait_ticks += granted_at - request_time
            if serialization:
                yield serialization
            uplink.release()
        else:
            yield from self._uplink(src).use(serialization)
        yield self.params.propagation
        if injector is not None and (
            injector.link_verdict(first_link, self.now, packet) != OK
        ):
            delivered = False
        if delivered:
            # Each switch: pipeline + contended finite-depth egress + cable.
            for switch, next_hop, wan_extra, link_label in hops:
                forwarded = yield from switch.forward_transit(
                    packet.size_bytes,
                    egress_port=next_hop,
                    tracer=tracer,
                    uid=packet.uid,
                )
                if forwarded is False:
                    # Lossy-mode output-queue overflow at this switch.
                    delivered = False
                    break
                if wan_extra:
                    # The inter-DC edge-to-edge link is metro fiber, not a
                    # rack cable: add the WAN propagation on top.
                    yield INTER_DC_WAN_PROPAGATION
                if injector is not None and (
                    injector.link_verdict(link_label, self.now, packet) != OK
                ):
                    delivered = False
                    break
        if delivered:
            # Receiver NIC MAC/PHY.
            yield self.params.mac_phy_latency
        elapsed = self.now - start
        packet.breakdown.add("wire", elapsed)
        if tracer is not None:
            # The end-to-end wire span; per-switch queue/transmit spans
            # nest inside it (emitted by forward_transit above).
            tracer.add(packet.uid, "wire", "net", start, self.now)
        if delivered:
            self.stats.count("packets")
            self.stats.count("bytes", packet.size_bytes)
            self.stats.sample("transit_ns", elapsed / 1000)
        else:
            self.stats.count("dropped")
        return delivered

    def stall_count(self) -> int:
        """Total ingress stalls on full output queues, fabric-wide."""
        return sum(
            switch.stats.get_counter("egress_stalls")
            for switch in self.switches.values()
        )

    def forwarded_count(self) -> int:
        """Total per-switch forward operations, fabric-wide."""
        return sum(
            switch.stats.get_counter("forwarded")
            for switch in self.switches.values()
        )

    def overflow_count(self) -> int:
        """Total lossy-mode output-queue overflow drops, fabric-wide."""
        return sum(
            switch.stats.get_counter("overflow_drops")
            for switch in self.switches.values()
        )
