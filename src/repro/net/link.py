"""The Ethernet wire model.

The "wire" segment of Fig. 11: MAC+PHY pipeline on each side,
serialization of the framed packet at link rate, and cable propagation.
Framing adds preamble, FCS, and inter-frame gap, and frames pad up to
the 64 B Ethernet minimum.
"""

from __future__ import annotations

from typing import Optional

from repro.params import DEFAULT, NetworkParams
from repro.sim import Component, Future, Resource, Simulator
from repro.units import transfer_time


class EthernetWire(Component):
    """One full-duplex point-to-point Ethernet link."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        params: Optional[NetworkParams] = None,
    ):
        super().__init__(sim, name)
        self.params = params if params is not None else DEFAULT.network
        self._tx_bus = Resource(sim, name=f"{name}.txbus")
        self._rx_bus = Resource(sim, name=f"{name}.rxbus")

    def frame_bytes(self, size_bytes: int) -> int:
        """On-wire bytes for a packet, with padding and framing."""
        return self.params.framed_bytes(size_bytes)

    def serialization_ticks(self, size_bytes: int) -> int:
        """Time for the framed packet to cross the link at line rate."""
        return transfer_time(self.frame_bytes(size_bytes), self.params.link_bytes_per_ps)

    def latency(self, size_bytes: int) -> int:
        """Closed-form unloaded one-way wire latency.

        Sender MAC/PHY + serialization + propagation + receiver MAC/PHY.
        """
        return (
            2 * self.params.mac_phy_latency
            + self.serialization_ticks(size_bytes)
            + self.params.propagation
        )

    def transmit(self, size_bytes: int, reverse: bool = False) -> Future:
        """Event-driven transmission; future completes at full reception.

        Concurrent packets in the same direction serialize on the link.
        """
        done = self.sim.future()
        bus = self._rx_bus if reverse else self._tx_bus
        sim = self.sim
        sim.spawn(self._transmit_body(size_bytes, bus, done),
                  name=f"{self.name}.tx" if sim.named else "")
        return done

    def _transmit_body(self, size_bytes: int, bus: Resource, done: Future):
        start = self.now
        yield self.params.mac_phy_latency
        yield from bus.use(self.serialization_ticks(size_bytes))
        yield self.params.propagation + self.params.mac_phy_latency
        self.stats.count("packets")
        self.stats.count("bytes", size_bytes)
        self.stats.sample("wire_ns", (self.now - start) / 1000)
        done.set_result(None)
