"""The Facebook-style clos fabric (Sec. 5.1).

The paper replays Facebook production traces over a simulated clos
topology [58, 60].  Facebook's published datacenter fabric [60] is a
multi-tier clos: hosts connect to a rack switch (ToR), racks aggregate
through cluster/fabric switches, clusters through spine switches, and
datacenters through edge/WAN routers.  Packet locality therefore fixes
the hop count:

=============  ==========================================  =====
locality       path                                        hops
=============  ==========================================  =====
intra-rack     ToR                                         1
intra-cluster  ToR → fabric → ToR                          3
intra-DC       ToR → fabric → spine → fabric → ToR         5
inter-DC       ... → edge → WAN → edge → ...               7+WAN
=============  ==========================================  =====

The traffic-pattern mix per cluster type follows the paper: database
traffic is mostly inter-cluster and inter-datacenter, webserver mostly
intra-datacenter, hadoop intra-cluster.

The topology is held as a networkx graph so structural properties
(path existence, hop counts, bisection) are checkable, while the
latency math uses the per-hop switch model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.params import NetworkParams
from repro.units import ns, transfer_time


class Locality(enum.Enum):
    """Where a packet's destination sits relative to its source."""

    INTRA_RACK = "intra-rack"
    INTRA_CLUSTER = "intra-cluster"
    INTRA_DATACENTER = "intra-datacenter"
    INTER_DATACENTER = "inter-datacenter"


SWITCH_HOPS: Dict[Locality, int] = {
    Locality.INTRA_RACK: 1,
    Locality.INTRA_CLUSTER: 3,
    Locality.INTRA_DATACENTER: 5,
    Locality.INTER_DATACENTER: 7,
}

INTER_DC_WAN_PROPAGATION = ns(5000)
"""Extra one-way propagation for inter-datacenter traffic (a few km of
metro fiber between availability zones; 5 us one way)."""


@dataclass(frozen=True)
class ClosConfig:
    """Shape of the fabric."""

    racks_per_cluster: int = 4
    hosts_per_rack: int = 4
    clusters: int = 2
    fabric_per_cluster: int = 2
    spines: int = 2
    datacenters: int = 2


class ClosTopology:
    """A multi-tier clos fabric with locality-based path resolution."""

    def __init__(
        self,
        config: Optional[ClosConfig] = None,
        params: Optional[NetworkParams] = None,
    ):
        self.config = config or ClosConfig()
        self.params = params or NetworkParams()
        self.graph = nx.Graph()
        self._build()

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        config = self.config
        for dc in range(config.datacenters):
            edge = f"dc{dc}/edge"
            self.graph.add_node(edge, tier="edge")
            for spine in range(config.spines):
                spine_name = f"dc{dc}/spine{spine}"
                self.graph.add_node(spine_name, tier="spine")
                self.graph.add_edge(spine_name, edge)
            for cluster in range(config.clusters):
                for fabric in range(config.fabric_per_cluster):
                    fabric_name = f"dc{dc}/c{cluster}/fab{fabric}"
                    self.graph.add_node(fabric_name, tier="fabric")
                    for spine in range(config.spines):
                        self.graph.add_edge(fabric_name, f"dc{dc}/spine{spine}")
                for rack in range(config.racks_per_cluster):
                    tor = f"dc{dc}/c{cluster}/r{rack}/tor"
                    self.graph.add_node(tor, tier="tor")
                    for fabric in range(config.fabric_per_cluster):
                        self.graph.add_edge(tor, f"dc{dc}/c{cluster}/fab{fabric}")
                    for host in range(config.hosts_per_rack):
                        host_name = f"dc{dc}/c{cluster}/r{rack}/h{host}"
                        self.graph.add_node(host_name, tier="host")
                        self.graph.add_edge(host_name, tor)
        # Inter-DC connectivity through the edge routers.
        edges = [f"dc{dc}/edge" for dc in range(config.datacenters)]
        for a, b in zip(edges, edges[1:]):
            self.graph.add_edge(a, b)

    # -- structural queries ---------------------------------------------------

    def hosts(self) -> List[str]:
        """All host node names."""
        return sorted(
            node for node, data in self.graph.nodes(data=True) if data["tier"] == "host"
        )

    def switch_count(self, src: str, dst: str) -> int:
        """Number of switch/router hops on the shortest path."""
        path = nx.shortest_path(self.graph, src, dst)
        return sum(1 for node in path if self.graph.nodes[node]["tier"] != "host")

    def classify(self, src: str, dst: str) -> Locality:
        """Locality class of a host pair from their names."""
        src_dc, src_cluster, src_rack = self._coordinates(src)
        dst_dc, dst_cluster, dst_rack = self._coordinates(dst)
        if src_dc != dst_dc:
            return Locality.INTER_DATACENTER
        if src_cluster != dst_cluster:
            return Locality.INTRA_DATACENTER
        if src_rack != dst_rack:
            return Locality.INTRA_CLUSTER
        return Locality.INTRA_RACK

    @staticmethod
    def _coordinates(host: str) -> Tuple[str, str, str]:
        parts = host.split("/")
        if len(parts) != 4:
            raise ValueError(f"not a host name: {host}")
        return parts[0], parts[1], parts[2]

    # -- latency model ---------------------------------------------------------

    def hop_count(self, locality: Locality) -> int:
        """Switch hops for a locality class."""
        return SWITCH_HOPS[locality]

    def path_latency(self, size_bytes: int, locality: Locality) -> int:
        """One-way fabric latency beyond the end-host NICs.

        Per hop: switch pipeline + egress serialization + cable
        propagation (cut-through).  The sender NIC's own serialization
        and MAC/PHY are part of the end-host "wire" segment, so the
        first serialization is *not* double counted here: hop costs
        cover the store-and-forward points inside the fabric.
        """
        hops = self.hop_count(locality)
        framed = max(size_bytes, self.params.min_frame_bytes) + (
            self.params.ethernet_overhead_bytes
        )
        serialization = transfer_time(framed, self.params.link_bytes_per_ps)
        per_hop = self.params.switch_latency + serialization + self.params.propagation
        total = hops * per_hop
        if locality is Locality.INTER_DATACENTER:
            total += INTER_DC_WAN_PROPAGATION
        return total
