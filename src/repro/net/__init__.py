"""Network substrate: packets, Ethernet wire model, switches, clos fabric.

* :mod:`repro.net.packet` — the packet object (sizes, headers, latency
  breakdown accounting).
* :mod:`repro.net.link` — 40GbE wire model: serialization, MAC/PHY
  pipeline, propagation.
* :mod:`repro.net.switch` — per-hop switch latency model with optional
  finite-depth output queues (backpressure).
* :mod:`repro.net.topology` — the Facebook-style multi-tier clos fabric
  (on networkx) with traffic-locality path resolution used by the
  Fig. 12(a) trace replay.
* :mod:`repro.net.fabric` — event-driven fabric instantiation: packets
  live-traverse one switch instance per topology node (the scenario
  layer's transport).
"""

from repro.net.fabric import ClosFabric, DirectFabric
from repro.net.link import EthernetWire
from repro.net.packet import Breakdown, Packet, TCP_IP_HEADER_BYTES
from repro.net.switch import Switch
from repro.net.topology import ClosTopology, Locality

__all__ = [
    "Breakdown",
    "ClosFabric",
    "ClosTopology",
    "DirectFabric",
    "EthernetWire",
    "Locality",
    "Packet",
    "Switch",
    "TCP_IP_HEADER_BYTES",
]
