"""Packets and per-segment latency accounting.

A :class:`Packet` carries only metadata — sizes, addresses, flow
identity — because the simulator tracks *where* bytes move and *when*,
never their contents.  Each packet also carries a :class:`Breakdown`
that the driver and device models fill in, segment by segment, with the
exact component labels of the paper's Fig. 11: ``txCopy``, ``txFlush``,
``ioreg``, ``txDMA``, ``wire``, ``rxDMA``, ``rxInvalidate``, ``rxCopy``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.units import CACHELINE, cachelines

TCP_IP_HEADER_BYTES = 52
"""Maximum TCP/IP header size (Sec. 4.1: "The maximum header size of a
TCP/IP packet is 52 Bytes"), which is why caching only the first 64 B
cacheline of a received packet captures all headers."""

FIG11_SEGMENTS = (
    "txCopy",
    "txFlush",
    "ioreg",
    "txDMA",
    "wire",
    "rxDMA",
    "rxInvalidate",
    "rxCopy",
)
"""Latency segments, in path order, matching the paper's Fig. 11 legend
(the paper shows "I/O reg acc" as one bar; we label it ``ioreg``)."""

_packet_ids = itertools.count(1)


class Breakdown:
    """Accumulated per-segment latency for one packet (ticks)."""

    __slots__ = ("segments",)

    def __init__(self):
        self.segments: Dict[str, int] = {}

    def add(self, segment: str, ticks: int) -> None:
        """Charge ``ticks`` to ``segment``."""
        if ticks < 0:
            raise ValueError(f"negative segment time: {segment}={ticks}")
        self.segments[segment] = self.segments.get(segment, 0) + ticks

    def get(self, segment: str) -> int:
        """Ticks charged to ``segment`` so far."""
        return self.segments.get(segment, 0)

    @property
    def total(self) -> int:
        """Sum over all segments."""
        return sum(self.segments.values())

    def fraction(self, segment: str) -> float:
        """Share of the total charged to ``segment``."""
        total = self.total
        if total == 0:
            return 0.0
        return self.get(segment) / total

    def merged(self, other: "Breakdown") -> "Breakdown":
        """A new breakdown with both sets of charges."""
        result = Breakdown()
        for segment, ticks in self.segments.items():
            result.add(segment, ticks)
        for segment, ticks in other.segments.items():
            result.add(segment, ticks)
        return result

    def as_dict(self) -> Dict[str, int]:
        """Copy of the segment map, in Fig. 11 order then extras."""
        ordered: Dict[str, int] = {}
        for segment in FIG11_SEGMENTS:
            if segment in self.segments:
                ordered[segment] = self.segments[segment]
        for segment, ticks in self.segments.items():
            if segment not in ordered:
                ordered[segment] = ticks
        return ordered

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v / 1000:.0f}ns" for k, v in self.as_dict().items())
        return f"Breakdown({parts})"


@dataclass
class Packet:
    """One network packet's metadata."""

    size_bytes: int
    """Total packet size on the wire before Ethernet framing overhead
    (i.e. headers + payload, the x-axis of Fig. 4 / Fig. 11)."""

    src: str = ""
    dst: str = ""
    flow_id: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    header_bytes: int = TCP_IP_HEADER_BYTES
    dma_address: Optional[int] = None
    """Where the packet's DMA buffer lives (filled by the driver)."""

    app_address: Optional[int] = None
    """Where the application buffer lives (filled by the driver)."""

    copy_needed: bool = False
    """The SKB COPY_NEEDED flag (Sec. 4.2.2): set for packets whose data
    was not allocated on the serving NetDIMM's zone (connection setup or
    zone-exhaustion fallback), forcing the slow copy path in Alg. 1."""

    uid: Optional[int] = None
    """Scenario-stable identity for fault injection: the packet's index
    in the scenario's traffic plan.  Unlike ``packet_id`` (a process-wide
    counter that differs between serial and pooled runs), ``uid`` is the
    same for the same spec no matter how many scenarios share the
    process, which is what keys fault verdicts deterministically.
    ``None`` (warmup and non-scenario packets) is never faulted."""

    attempt: int = 0
    """Zero-based transmission attempt (bumped on each retransmit), so
    every retry rolls a fresh fault verdict."""

    breakdown: Breakdown = field(default_factory=Breakdown)

    def __post_init__(self):
        if self.size_bytes <= 0:
            raise ValueError(f"packet must have positive size: {self.size_bytes}")

    @property
    def num_cachelines(self) -> int:
        """Cachelines the packet occupies (1–24 for MTU-sized packets,
        matching Fig. 7's 24-line bursts for 1514 B packets)."""
        return cachelines(self.size_bytes)

    @property
    def payload_bytes(self) -> int:
        """Bytes past the first cacheline — what header-split leaves in
        NetDIMM-local DRAM when only headers go to the host."""
        return max(0, self.size_bytes - CACHELINE)
