"""The NetDIMM buffer device (Sec. 4.1, Fig. 6).

Composes the nMC, nCache, nPrefetcher, RowClone engine, and the
nController logic that routes between them:

* Host (PHY-side) accesses arrive through the asynchronous NVDIMM-P
  protocol (:class:`~repro.dram.nvdimmp.AsyncMemoryPort` calls
  :meth:`device_read` / :meth:`device_write`).  Reads check nCache
  first; hits are consumed and answered at SRAM latency, misses go to
  the nMC at *PHY priority*.
* nNIC-side DMA (:meth:`nic_receive_dma` / :meth:`nic_transmit_dma`)
  goes to the nMC at *nNIC priority* — the arbitration rule of
  Sec. 4.1 ("giving priority to the nNIC accesses").
* While depositing a received packet, the nController writes the
  packet's **first cacheline** into nCache with the ``first_line`` flag
  set: headers are what the network stack reads immediately, and
  header-only functions never touch the payload at all.
* :meth:`clone` is the ``netdimmClone(dst, src, size)`` register
  interface backing Alg. 1's in-memory buffer cloning.

These two request classes meeting at one nMC is exactly why host access
time to NetDIMM memory is non-deterministic (R1/R2 in Sec. 4.1) — and
why the DDR5 asynchronous protocol is the enabling mechanism.
"""

from __future__ import annotations

from typing import Optional

from repro.core.ncache import NCache
from repro.core.nprefetcher import NextLinePrefetcher
from repro.core.rowclone import CloneEngine, CloneMode
from repro.dram.controller import MemoryController
from repro.dram.geometry import DRAMGeometry
from repro.nic.descriptor import Descriptor
from repro.params import SystemParams
from repro.sim import Component, Future, Simulator
from repro.units import CACHELINE, cachelines

NNIC_PRIORITY = 0
"""nMC priority for nNIC-originated requests (served first)."""

PHY_PRIORITY = 1
"""nMC priority for host-originated (PHY) requests."""


class NetDIMMDevice(Component):
    """One NetDIMM: local DRAM + the integrated buffer-device logic."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        params: Optional[SystemParams] = None,
        geometry: Optional[DRAMGeometry] = None,
        zone_base: int = 0,
    ):
        super().__init__(sim, name)
        self.params = params or SystemParams()
        self.geometry = geometry or DRAMGeometry()
        self.zone_base = zone_base
        netdimm = self.params.netdimm
        self.nmc = MemoryController(
            sim, f"{name}.nmc", self.params.netdimm_dram, self.geometry
        )
        self.ncache = NCache(
            num_lines=netdimm.ncache_lines,
            ways=netdimm.ncache_ways,
        )
        self.nprefetcher = NextLinePrefetcher(
            sim,
            f"{name}.npf",
            self.ncache,
            fetch_line=self._prefetch_fetch,
            degree=netdimm.nprefetch_degree,
        )
        self.clone_engine = CloneEngine(
            sim, f"{name}.clone", self.geometry, self.nmc, netdimm, zone_base=zone_base
        )

    # -- address handling -------------------------------------------------------

    def _local(self, address: int) -> int:
        local = address - self.zone_base
        if local < 0:
            raise ValueError(
                f"address {address:#x} below NetDIMM zone base {self.zone_base:#x}"
            )
        return local

    def _prefetch_fetch(self, global_address: int) -> Future:
        return self.nmc.read(self._local(global_address), CACHELINE, priority=PHY_PRIORITY)

    # -- host-side (PHY) interface: the AsyncDevice protocol ---------------------

    def device_read(self, address: int, size_bytes: int) -> Future:
        """A host read arriving over the memory channel.

        Checks nCache line by line (consuming hits), fetches misses from
        local DRAM at PHY priority, and pokes the prefetcher.  The
        future completes when every requested line is in the buffer
        device, i.e. when RDY can be raised.
        """
        self._local(address)  # validate eagerly, before the process runs
        sim = self.sim
        done = sim.future()
        sim.spawn(self._device_read_body(address, size_bytes, done),
                  name=f"{self.name}.rd" if sim.named else "")
        return done

    def _device_read_body(self, address: int, size_bytes: int, done: Future):
        start = self.now
        yield self.params.netdimm.ncontroller_latency
        lines = cachelines(max(size_bytes, 1))
        base = address - (address % CACHELINE)
        misses = []
        hit_count = 0
        for i in range(lines):
            line_address = base + i * CACHELINE
            if self.params.netdimm.ncache_enabled:
                hit, was_first = self.ncache.host_read(line_address)
            else:
                hit, was_first = False, False
            if hit:
                hit_count += 1
                self.nprefetcher.on_host_read(line_address, was_first)
            else:
                misses.append(line_address)
                self.nprefetcher.on_host_read(line_address, was_first_line=False)
        if hit_count:
            self.stats.count("ncache_hits", hit_count)
            yield self.params.netdimm.ncache_hit_latency
        if misses:
            self.stats.count("ncache_misses", len(misses))
            pending = [
                self.nmc.read(self._local(line), CACHELINE, priority=PHY_PRIORITY)
                for line in misses
            ]
            yield self.sim.all_of(pending)
        self.stats.sample("host_read_ns", (self.now - start) / 1000)
        done.set_result(None)

    def device_write(self, address: int, size_bytes: int) -> Future:
        """A host write arriving over the memory channel.

        Writes bypass nCache (Sec. 4.1: queued straight into the nMC
        write queue) but their addresses are snooped to keep nCache
        coherent.  The returned future completes when the write is
        accepted; the media write drains in the background.
        """
        self._local(address)  # validate eagerly
        invalidated = self.ncache.snoop_write(address, size_bytes)
        if invalidated:
            self.stats.count("snoop_invalidations", invalidated)
        self.nmc.write(self._local(address), size_bytes, priority=PHY_PRIORITY)
        done = self.sim.future()
        self.sim.schedule(
            self.params.netdimm.ncontroller_latency, done.set_result, None
        )
        self.stats.count("host_writes")
        return done

    # -- nNIC-side DMA ------------------------------------------------------------

    def nic_receive_dma(
        self, buffer_address: int, size_bytes: int, descriptor_address: int
    ) -> Future:
        """Deposit a received packet (paper steps R1–R3).

        Fetch the RX descriptor, stream the packet from the nNIC RX
        buffer into local DRAM, mirror the first cacheline into nCache
        (header caching), and write back the descriptor status.  All at
        nNIC priority.
        """
        sim = self.sim
        done = sim.future()
        sim.spawn(
            self._nic_rx_body(buffer_address, size_bytes, descriptor_address, done),
            name=f"{self.name}.nicrx" if sim.named else "",
        )
        return done

    def _nic_rx_body(
        self, buffer_address: int, size_bytes: int, descriptor_address: int, done: Future
    ):
        start = self.now
        yield self.params.nic.nnic_dma_setup
        yield self.params.netdimm.ncontroller_latency
        # R1: fetch the next available RX descriptor.
        yield self.nmc.read(
            self._local(descriptor_address),
            Descriptor.DESCRIPTOR_BYTES,
            priority=NNIC_PRIORITY,
        )
        # R2: deplete the nNIC RX buffer into the descriptor's DMA buffer.
        self.ncache.snoop_write(buffer_address, size_bytes)
        write_done = self.nmc.write(
            self._local(buffer_address), size_bytes, priority=NNIC_PRIORITY
        )
        # Header split: the first cacheline is mirrored into nCache as it
        # streams past, flagged as a packet head.
        if self.params.netdimm.ncache_enabled:
            self.ncache.fill_header(buffer_address)
        yield write_done
        # R3: update the RX descriptor ring (status writeback).
        yield self.nmc.write(
            self._local(descriptor_address),
            Descriptor.DESCRIPTOR_BYTES,
            priority=NNIC_PRIORITY,
        )
        self.stats.count("rx_packets")
        self.stats.count("rx_bytes", size_bytes)
        self.stats.sample("nic_rx_dma_ns", (self.now - start) / 1000)
        done.set_result(None)

    def nic_transmit_dma(
        self, buffer_address: int, size_bytes: int, descriptor_address: int
    ) -> Future:
        """Pull a packet for transmission (paper step T3, on-DIMM).

        Fetch the TX descriptor, read the packet out of local DRAM into
        the nNIC TX buffer, and write back completion status.
        """
        sim = self.sim
        done = sim.future()
        sim.spawn(
            self._nic_tx_body(buffer_address, size_bytes, descriptor_address, done),
            name=f"{self.name}.nictx" if sim.named else "",
        )
        return done

    def _nic_tx_body(
        self, buffer_address: int, size_bytes: int, descriptor_address: int, done: Future
    ):
        start = self.now
        yield self.params.nic.nnic_dma_setup
        yield self.params.netdimm.ncontroller_latency
        yield self.nmc.read(
            self._local(descriptor_address),
            Descriptor.DESCRIPTOR_BYTES,
            priority=NNIC_PRIORITY,
        )
        yield self.nmc.read(
            self._local(buffer_address), size_bytes, priority=NNIC_PRIORITY
        )
        yield self.nmc.write(
            self._local(descriptor_address),
            Descriptor.DESCRIPTOR_BYTES,
            priority=NNIC_PRIORITY,
        )
        self.stats.count("tx_packets")
        self.stats.count("tx_bytes", size_bytes)
        self.stats.sample("nic_tx_dma_ns", (self.now - start) / 1000)
        done.set_result(None)

    # -- the netdimmClone register interface ---------------------------------------

    def clone(self, dst: int, src: int, size_bytes: int) -> Future:
        """Execute ``netdimmClone(dst, src, size)`` (Alg. 1 line 14).

        The host has already paid the register-write cost; this runs the
        in-memory copy.  nCache lines covering the destination are
        snooped out (the clone writes new data under them), and on
        completion the destination's first cacheline is re-mirrored into
        nCache with the ``first_line`` flag: the network stack is about
        to read the header *through the cloned SKB address*, and the
        header-caching property must survive the clone.
        """
        self.ncache.snoop_write(dst, size_bytes)
        done = self.sim.future()
        clone_done = self.clone_engine.clone(src, dst, size_bytes)

        def _mirror(_future):
            if self.params.netdimm.ncache_enabled:
                self.ncache.fill_header(dst)
            done.set_result(None)

        clone_done.add_callback(_mirror)
        return done

    def clone_mode(self, dst: int, src: int) -> CloneMode:
        """Which clone mode a (dst, src) pair would use."""
        return self.clone_engine.classify(src, dst)
