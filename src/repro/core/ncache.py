"""nCache: the NetDIMM buffer device's RX SRAM buffer (Sec. 4.1).

nCache is "an inclusive, set associative cache structure" — but with
three deliberately unusual behaviours the paper specifies:

1. **Consume-on-read.**  Once a host read hits a line, the line is
   removed: the data is about to live in a host cache or elsewhere in
   memory, so its nCache copy has no further value.
2. **Random replacement**, and no writebacks — every line is clean
   (nCache only ever holds copies of data already in local DRAM).
3. **A one-bit ``first_line`` flag per line**, set when the line is the
   first cacheline of a newly received packet (the packet header).  The
   nPrefetcher checks this flag: header reads do *not* trigger
   prefetch (header-only network functions must not pollute nCache),
   while payload reads do.  The flag resets at the line's first access.

Writes never allocate in nCache; instead, the nController snoops write
addresses from the PHY or nNIC and invalidates matching lines.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cache.cache import ReplacementPolicy, SetAssociativeCache
from repro.units import CACHELINE


class NCache:
    """Consume-on-read packet buffer with first-line flags."""

    def __init__(self, num_lines: int = 2048, ways: int = 8, seed: int = 1):
        self._cache = SetAssociativeCache(
            num_lines=num_lines,
            ways=ways,
            policy=ReplacementPolicy.RANDOM,
            seed=seed,
        )
        self.consumed_reads = 0
        self.header_fills = 0
        self.prefetch_fills = 0

    @property
    def capacity_bytes(self) -> int:
        """Total SRAM capacity."""
        return self._cache.capacity_bytes

    @property
    def stats(self):
        """Underlying hit/miss/eviction counters."""
        return self._cache.stats

    def host_read(self, address: int) -> Tuple[bool, bool]:
        """A host (PHY-side) read of one cacheline.

        Returns ``(hit, was_first_line)``.  On a hit the line is
        consumed (removed) — its data is now the host's problem — and
        the ``first_line`` flag it carried is reported so the caller can
        gate the prefetcher.
        """
        line = self._align(address)
        if not self._cache.contains(line):
            self._cache.stats.misses += 1
            return False, False
        was_first = self._cache.get_flag(line, "first_line")
        self._cache.stats.hits += 1
        self._cache.invalidate(line)
        # The invalidation above is bookkeeping, not a coherence event.
        self._cache.stats.invalidations -= 1
        self.consumed_reads += 1
        return True, was_first

    def fill_header(self, address: int) -> None:
        """Insert the first cacheline of a newly received packet."""
        self._cache.fill(self._align(address), first_line=True)
        self.header_fills += 1

    def fill_prefetch(self, address: int) -> None:
        """Insert a prefetched payload cacheline (flag clear)."""
        self._cache.fill(self._align(address), first_line=False)
        self.prefetch_fills += 1

    def contains(self, address: int) -> bool:
        """Presence check without consuming."""
        return self._cache.contains(self._align(address))

    def snoop_write(self, address: int, size_bytes: int = CACHELINE) -> int:
        """Invalidate lines overlapping a PHY/nNIC write; returns count.

        This is the coherence mechanism of Sec. 4.1: "nController snoops
        the addresses of write requests ... and invalidates the matching
        cachelines in nCache."
        """
        first = self._align(address)
        last = self._align(address + max(size_bytes, 1) - 1)
        return self._cache.invalidate_many(range(first, last + CACHELINE, CACHELINE))

    def occupancy(self) -> int:
        """Valid lines currently buffered."""
        return self._cache.occupancy()

    @staticmethod
    def _align(address: int) -> int:
        return address - (address % CACHELINE)
