"""In-memory buffer cloning: the extended RowClone engine (Sec. 4.1, Fig. 8).

Copying memory through the CPU costs two channel crossings per byte
(~1 us per 4 KB page over DDR3 [61]).  NetDIMM instead clones DMA
buffers to application buffers *inside* the DRAM, in one of three modes
chosen by where source and destination live:

* **FPM** (fast parallel mode) — source and destination rows share a
  bank sub-array: two back-to-back ACTIVATEs move a whole row
  (~90 ns/row [61]).  This is why ``__alloc_netdimm_pages`` tries so
  hard to co-locate buffers in a sub-array.
* **PSM** (pipeline serial mode) — same DRAM device (here: same rank),
  different bank/sub-array: cachelines stream over the device-internal
  bus.
* **GCM** (general cloning mode) — anything else: the buffer device
  reads the source up through the nMC and writes it back — a
  near-memory DMA engine, slowest but fully general.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.dram.controller import MemoryController
from repro.dram.geometry import DRAMGeometry, RANK_ROW_BYTES
from repro.params import NetDIMMParams
from repro.sim import Component, Future, Simulator
from repro.units import CACHELINE, PAGE, cachelines


class CloneMode(enum.Enum):
    """Which cloning mechanism a (src, dst) pair allows."""

    FPM = "fpm"
    PSM = "psm"
    GCM = "gcm"


class CloneEngine(Component):
    """The NetDIMM buffer device's clone executor."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        geometry: DRAMGeometry,
        nmc: MemoryController,
        params: Optional[NetDIMMParams] = None,
        zone_base: int = 0,
    ):
        super().__init__(sim, name)
        self.geometry = geometry
        self.nmc = nmc
        self.params = params or NetDIMMParams()
        self.zone_base = zone_base
        """Global base address of the NetDIMM zone; clone addresses are
        global and converted to DIMM-local for geometry decisions."""

    def _local(self, address: int) -> int:
        return address - self.zone_base

    def classify(self, src: int, dst: int) -> CloneMode:
        """Pick the clone mode for one page-or-smaller chunk."""
        src_local = self._local(src)
        dst_local = self._local(dst)
        if self.geometry.same_subarray(src_local, dst_local):
            return CloneMode.FPM
        if self.geometry.same_rank(src_local, dst_local):
            return CloneMode.PSM
        return CloneMode.GCM

    def latency_estimate(self, src: int, dst: int, size_bytes: int) -> int:
        """Closed-form unloaded clone latency (no nMC queueing)."""
        total = self.params.rowclone_issue_cost
        for chunk_src, chunk_dst, chunk_size in self._chunks(src, dst, size_bytes):
            mode = self.classify(chunk_src, chunk_dst)
            total += self._chunk_latency(mode, chunk_size)
        return total

    def _chunk_latency(self, mode: CloneMode, size_bytes: int) -> int:
        if mode is CloneMode.FPM:
            rows = max(1, -(-size_bytes // RANK_ROW_BYTES))
            return rows * self.params.rowclone_fpm_per_row
        lines = cachelines(size_bytes)
        if mode is CloneMode.PSM:
            return lines * self.params.rowclone_psm_per_line
        return lines * self.params.rowclone_gcm_per_line

    @staticmethod
    def _chunks(src: int, dst: int, size_bytes: int):
        """Split a clone at page boundaries (mode can differ per page)."""
        remaining = size_bytes
        while remaining > 0:
            src_room = PAGE - (src % PAGE)
            dst_room = PAGE - (dst % PAGE)
            chunk = min(remaining, src_room, dst_room)
            yield src, dst, chunk
            src += chunk
            dst += chunk
            remaining -= chunk

    def clone(self, src: int, dst: int, size_bytes: int) -> Future:
        """Execute a clone; future completes when the copy is durable.

        FPM/PSM run inside the DRAM devices (latency only — they do not
        occupy the nMC data bus).  GCM round-trips every line through
        the nMC at nNIC priority, so it both takes longer and contends
        with other NetDIMM traffic, exactly the cost hierarchy of Fig. 8.
        """
        if size_bytes <= 0:
            raise ValueError(f"clone size must be positive: {size_bytes}")
        done = self.sim.future()
        sim = self.sim
        sim.spawn(self._clone_body(src, dst, size_bytes, done),
                  name=f"{self.name}.clone" if sim.named else "")
        return done

    def _clone_body(self, src: int, dst: int, size_bytes: int, done: Future):
        start = self.now
        yield self.params.rowclone_issue_cost
        for chunk_src, chunk_dst, chunk_size in self._chunks(src, dst, size_bytes):
            mode = self.classify(chunk_src, chunk_dst)
            self.stats.count(f"clones_{mode.value}")
            self.stats.count(f"bytes_{mode.value}", chunk_size)
            if mode is CloneMode.GCM:
                yield self.nmc.read(self._local(chunk_src), chunk_size, priority=0)
                yield self.nmc.write(self._local(chunk_dst), chunk_size, priority=0)
                # The per-line engine overhead beyond the raw memory ops.
                yield cachelines(chunk_size) * max(
                    0,
                    self.params.rowclone_gcm_per_line
                    - self.params.rowclone_psm_per_line,
                )
            else:
                yield self._chunk_latency(mode, chunk_size)
        self.stats.sample("clone_ns", (self.now - start) / 1000)
        done.set_result(None)
