"""Power and energy feasibility (Sec. 4.3).

The paper argues NetDIMM is physically buildable by budget comparison:
IBM's Centaur buffer device dissipates 20 W in a DIMM form factor [54],
while a dual-40GbE Intel XXV710 NIC controller has a 6.5 W TDP [39] —
so a buffer device integrating a NIC fits an already-shipping thermal
envelope.  This module makes the argument executable: a TDP budget for
the NetDIMM buffer device, plus a per-packet data-movement energy model
comparing the three architectures.

Energy constants are the standard architecture-literature figures:
DRAM access energy ~15 pJ/bit (activation+IO at DDR4 voltages), SerDes
links (PCIe, Ethernet PHY) ~5 pJ/bit, on-die movement ~1 pJ/bit, and
RowClone's in-array copy at ~0.25× a normal DRAM access's energy per
bit (the ~74% bulk-copy energy reduction reported by [61]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

@dataclass(frozen=True)
class PowerParams:
    """TDP and per-bit energy constants, with provenance."""

    centaur_buffer_tdp_w: float = 20.0
    """IBM Centaur buffer device TDP, 22 nm [54] — the proof-of-
    feasibility envelope for powerful DIMM buffer devices."""

    nic_controller_tdp_w: float = 6.5
    """Intel XXV710 2x40GbE controller TDP [39]."""

    nvdimm_controller_w: float = 2.5
    """NVDIMM-P buffer/controller logic (protocol engine + PHY repeat),
    order of shipping NVDIMM controller power."""

    nmc_w: float = 1.5
    """One on-DIMM memory controller (a fraction of a Centaur's four)."""

    ncache_sram_w: float = 0.3
    """128 KB dual-port SRAM leakage + dynamic at packet rates."""

    rowclone_logic_w: float = 0.2
    """Clone sequencing logic (commands only; the energy is in-array)."""

    dram_pj_per_bit: float = 15.0
    """DRAM read or write energy (activation amortized), DDR4 class."""

    channel_pj_per_bit: float = 7.0
    """DDR channel transfer (IO + termination)."""

    pcie_pj_per_bit: float = 5.0
    """PCIe SerDes + protocol energy per transferred bit."""

    ondie_pj_per_bit: float = 1.0
    """On-die fabric movement (iNIC DMA, LLC traffic)."""

    cpu_copy_pj_per_bit: float = 10.0
    """CPU load+store pipeline energy for memcpy, beyond the memory
    accesses themselves."""

    rowclone_pj_per_bit: float = 3.8
    """In-array clone energy: ~0.25x of a read+write through the
    channel — RowClone reports 74.4% bulk-copy energy reduction [61]."""


class PowerModel:
    """Executable version of the Sec. 4.3 feasibility argument."""

    def __init__(self, params: PowerParams = PowerParams()):
        self.params = params

    # -- TDP budget -------------------------------------------------------------

    def buffer_device_tdp_w(self) -> float:
        """Estimated TDP of the NetDIMM buffer device.

        NIC controller + NVDIMM-P control + nMC + nCache SRAM + clone
        logic.
        """
        params = self.params
        return (
            params.nic_controller_tdp_w
            + params.nvdimm_controller_w
            + params.nmc_w
            + params.ncache_sram_w
            + params.rowclone_logic_w
        )

    def fits_centaur_envelope(self) -> bool:
        """The paper's conclusion: the budget fits a shipped device."""
        return self.buffer_device_tdp_w() <= self.params.centaur_buffer_tdp_w

    def tdp_headroom_w(self) -> float:
        """Watts left under the Centaur envelope."""
        return self.params.centaur_buffer_tdp_w - self.buffer_device_tdp_w()

    def tdp_breakdown(self) -> Dict[str, float]:
        """Per-block contribution to the buffer-device TDP."""
        params = self.params
        return {
            "nNIC (XXV710-class)": params.nic_controller_tdp_w,
            "NVDIMM-P controller": params.nvdimm_controller_w,
            "nMC": params.nmc_w,
            "nCache SRAM": params.ncache_sram_w,
            "RowClone logic": params.rowclone_logic_w,
        }

    # -- per-packet data-movement energy -------------------------------------------

    def packet_energy_nj(self, config: str, size_bytes: int) -> float:
        """Data-movement energy for one packet's one-way journey (nJ).

        Counts the movement steps of each architecture's RX path plus
        the TX read (the wire itself is common and excluded):

        * **dnic** — TX: DRAM read + PCIe; RX: PCIe + DRAM write, CPU
          copy (DRAM read + write + pipeline).
        * **inic** — TX: on-die read; RX: on-die write (DDIO), CPU copy
          from LLC (on-die + pipeline) + DRAM write of the destination.
        * **netdimm** — TX: one channel crossing (flush) + local DRAM
          write + local read; RX: local write + in-array clone + one
          header line over the channel.
        """
        bits = size_bytes * 8
        header_bits = 64 * 8
        params = self.params
        if config == "dnic":
            tx = bits * (params.dram_pj_per_bit + params.pcie_pj_per_bit)
            rx = bits * (params.pcie_pj_per_bit + params.dram_pj_per_bit)
            copy = bits * (
                2 * params.dram_pj_per_bit + params.cpu_copy_pj_per_bit
            )
            total = tx + rx + copy
        elif config == "inic":
            tx = bits * params.ondie_pj_per_bit
            rx = bits * params.ondie_pj_per_bit
            copy = bits * (
                params.ondie_pj_per_bit
                + params.cpu_copy_pj_per_bit
                + params.dram_pj_per_bit  # destination write-back
            )
            total = tx + rx + copy
        elif config == "netdimm":
            tx = bits * (
                params.channel_pj_per_bit + params.dram_pj_per_bit  # flush in
                + params.dram_pj_per_bit  # nNIC read out
            )
            rx = bits * params.dram_pj_per_bit  # nNIC write in
            clone = bits * params.rowclone_pj_per_bit
            header = header_bits * (
                params.dram_pj_per_bit + params.channel_pj_per_bit
            )
            total = tx + rx + clone + header
        else:
            raise ValueError(f"unknown config: {config!r}")
        return total / 1000.0  # pJ -> nJ

    def energy_saving(self, size_bytes: int, baseline: str = "dnic") -> float:
        """NetDIMM's per-packet data-movement energy reduction."""
        base = self.packet_energy_nj(baseline, size_bytes)
        netdimm = self.packet_energy_nj("netdimm", size_bytes)
        return 1 - netdimm / base
