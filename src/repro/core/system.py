"""A host with multiple NetDIMMs (Sec. 4.2.1).

The paper allows any number of NetDIMMs: "a system can have multiple
NetDIMMs installed on memory channels and each need a different memory
zone" — NET0, NET1, ... — with each NetDIMM's local memory exposed in
single-channel mode through flex interleaving (Fig. 10), below which
the conventional DIMMs interleave normally.

:class:`NetDIMMSystem` composes the pieces: the unified address space
(ZoneSet + flex AddressMapping), one buffer device + asynchronous host
port + allocator + allocCache per NetDIMM, and the flow-steering rule
that pins each connection to the NetDIMM serving it (the ``skb_zone``
mechanics of Sec. 4.2.2 generalized to several DIMMs).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.netdimm import NetDIMMDevice
from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import AddressMapping, FlexRegion, InterleaveMode
from repro.dram.nvdimmp import AsyncMemoryPort
from repro.mem.alloc_cache import AllocCache
from repro.mem.allocator import PageAllocator
from repro.mem.zones import ZoneSet, standard_layout
from repro.params import SystemParams
from repro.sim import Component, Simulator
from repro.units import mib


class NetDIMMSlot:
    """Everything attached to one NetDIMM: device, port, allocators."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        index: int,
        zone,
        params: SystemParams,
    ):
        self.index = index
        self.zone = zone
        geometry = DRAMGeometry()
        self.device = NetDIMMDevice(
            sim, f"{name}.netdimm{index}", params, geometry, zone_base=zone.base
        )
        self.port = AsyncMemoryPort(
            sim,
            f"{name}.port{index}",
            self.device,
            timing=params.netdimm_dram,
            protocol=params.nvdimmp,
        )
        self.allocator = PageAllocator(zone, geometry)
        self.alloc_cache = AllocCache(
            sim,
            f"{name}.alloccache{index}",
            self.allocator,
            refill_latency=params.software.alloc_pages_slow,
        )


class NetDIMMSystem(Component):
    """A server's memory system with N NetDIMMs and M host channels."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        params: Optional[SystemParams] = None,
        num_netdimms: int = 2,
        normal_zone_bytes: int = mib(64),
    ):
        super().__init__(sim, name)
        if num_netdimms < 1:
            raise ValueError("a NetDIMM system needs at least one NetDIMM")
        self.params = params or SystemParams()
        geometry = DRAMGeometry()
        self.zones: ZoneSet = standard_layout(
            normal_size=normal_zone_bytes,
            netdimm_sizes=[geometry.capacity_bytes] * num_netdimms,
        )
        self.slots: List[NetDIMMSlot] = [
            NetDIMMSlot(sim, name, index, self.zones.net_zone(index), self.params)
            for index in range(num_netdimms)
        ]
        self.mapping = self._build_mapping(normal_zone_bytes)
        self._flow_table: Dict[int, int] = {}

    def _build_mapping(self, normal_zone_bytes: int) -> AddressMapping:
        """Fig. 10: interleaved conventional region, then one
        single-channel region per NetDIMM.

        Each NetDIMM sits on channel ``index % num_host_channels``; its
        channel-local base clears the conventional share plus any
        earlier NetDIMM on the same channel.
        """
        channels = tuple(range(self.params.num_host_channels))
        regions = [
            FlexRegion(
                base=0,
                size=normal_zone_bytes,
                mode=InterleaveMode.MULTI,
                channels=channels,
                channel_bases=tuple(0 for _ in channels),
            )
        ]
        per_channel_share = normal_zone_bytes // len(channels)
        channel_cursor = {channel: per_channel_share for channel in channels}
        for slot in self.slots:
            channel = slot.index % len(channels)
            regions.append(
                FlexRegion(
                    base=slot.zone.base,
                    size=slot.zone.size,
                    mode=InterleaveMode.SINGLE,
                    channels=(channel,),
                    channel_bases=(channel_cursor[channel],),
                )
            )
            channel_cursor[channel] += slot.zone.size
        return AddressMapping(regions)

    # -- routing -------------------------------------------------------------

    @property
    def num_netdimms(self) -> int:
        """Installed NetDIMM count."""
        return len(self.slots)

    def slot_of(self, address: int) -> NetDIMMSlot:
        """The NetDIMM backing a physical address (raises if none)."""
        zone = self.zones.zone_of(address)
        if zone.netdimm_index is None:
            raise ValueError(f"address {address:#x} is in {zone.name}, not a NET zone")
        return self.slots[zone.netdimm_index]

    def channel_of(self, address: int) -> int:
        """Which host channel serves a physical address."""
        channel, _local = self.mapping.route(address)
        return channel

    # -- flow steering ----------------------------------------------------------

    def netdimm_for_flow(self, flow_id: int) -> NetDIMMSlot:
        """The NetDIMM serving a flow (sticky hash assignment).

        The first packet of a flow picks the least-loaded NetDIMM (by
        assigned flows); later packets stick, which is what keeps a
        connection's SKBs, DMA buffers, and descriptor ring on one
        zone.
        """
        index = self._flow_table.get(flow_id)
        if index is None:
            loads = [0] * len(self.slots)
            for assigned in self._flow_table.values():
                loads[assigned] += 1
            index = loads.index(min(loads))
            self._flow_table[flow_id] = index
            self.stats.count("flows_assigned")
        return self.slots[index]

    def flow_balance(self) -> List[int]:
        """Flows currently assigned per NetDIMM."""
        loads = [0] * len(self.slots)
        for index in self._flow_table.values():
            loads[index] += 1
        return loads
