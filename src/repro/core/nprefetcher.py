"""nPrefetcher: the flag-gated next-line prefetcher (Sec. 4.1).

An MTU packet spans up to 24 cachelines; when the host copies (or
clones and later touches) a payload, its reads arrive as a stream of
consecutive lines — the pattern of Fig. 7.  A next-line prefetcher
covers it: on a host read of line *L*, prefetch lines *L+1 .. L+n* from
local DRAM into nCache, so "in the worst case, reading an entire RX
packet may only experience one nCache miss".

The gate: the prefetcher is *disabled* for reads whose line carried the
``first_line`` flag (packet headers).  Header-only applications (L3F,
firewalls) read one line per packet and must not drag 4 more payload
lines into nCache.
"""

from __future__ import annotations

from typing import Callable

from repro.core.ncache import NCache
from repro.sim import Component, Simulator
from repro.units import CACHELINE


class NextLinePrefetcher(Component):
    """Prefetches the next *n* lines of a host-read stream into nCache."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ncache: NCache,
        fetch_line: Callable[[int], object],
        degree: int = 4,
    ):
        """``fetch_line(address)`` must return a Future that completes when
        the line has been read from local DRAM (the device wires this to
        an nMC read at PHY priority)."""
        super().__init__(sim, name)
        self.ncache = ncache
        self.fetch_line = fetch_line
        self.degree = degree
        self._inflight: set[int] = set()

    def on_host_read(self, address: int, was_first_line: bool) -> int:
        """Notify the prefetcher of a host read; returns lines launched.

        Called for *every* host read of the packet-buffer space, hit or
        miss.  Header reads (``was_first_line``) launch nothing.
        """
        if was_first_line or self.degree <= 0:
            self.stats.count("gated" if was_first_line else "disabled")
            return 0
        launched = 0
        line = address - (address % CACHELINE)
        for step in range(1, self.degree + 1):
            target = line + step * CACHELINE
            if self.ncache.contains(target) or target in self._inflight:
                continue
            self._inflight.add(target)
            self.sim.spawn(self._prefetch_body(target), name=f"{self.name}.pf")
            launched += 1
        self.stats.count("launched", launched)
        return launched

    def _prefetch_body(self, address: int):
        try:
            yield self.fetch_line(address)
            self.ncache.fill_prefetch(address)
            self.stats.count("completed")
        finally:
            self._inflight.discard(address)

    @property
    def inflight(self) -> int:
        """Prefetches currently outstanding."""
        return len(self._inflight)
