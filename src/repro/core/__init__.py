"""The NetDIMM buffer device — the paper's primary contribution (Sec. 4.1).

A NetDIMM is a DIMM whose buffer device integrates:

* **nNIC** — a full 40GbE NIC (MAC/PHY facing the network);
* **nMC** — a local memory controller for the DIMM's own DRAM;
* **nController** — NVDIMM-P control logic extended with DMA-engine
  functionality, nNIC-priority arbitration, and header-split handling;
* **nCache** — a consume-on-read SRAM buffer caching the first
  cacheline (the headers) of received packets;
* **nPrefetcher** — a flag-gated next-line prefetcher that streams the
  payload of a packet into nCache once the host starts reading it;
* **RowClone engine** — in-memory buffer cloning in FPM / PSM / GCM
  modes.

:class:`~repro.core.netdimm.NetDIMMDevice` composes all of these and
implements the asynchronous-device interface consumed by
:class:`~repro.dram.nvdimmp.AsyncMemoryPort`, so the host reaches it
exactly the way a DDR5 controller reaches an NVDIMM-P.
"""

from repro.core.ncache import NCache
from repro.core.netdimm import NetDIMMDevice
from repro.core.nprefetcher import NextLinePrefetcher
from repro.core.rowclone import CloneEngine, CloneMode

__all__ = [
    "CloneEngine",
    "CloneMode",
    "NCache",
    "NetDIMMDevice",
    "NextLinePrefetcher",
]
