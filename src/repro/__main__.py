"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiments [names...] [--jobs N] [--json PATH] [--baseline PATH] [--profile]``
    Run the paper's tables/figures (all by default) and print reports.
    ``--jobs`` fans experiments (and sweep points) over worker
    processes; ``--json`` writes the versioned artifact; ``--baseline``
    diffs against a previous artifact and exits 1 on regressions;
    ``--profile`` appends a kernel event profile (events per callback
    owner, forces ``--jobs 1``).
``list``
    List available experiments with one-line descriptions.
``oneway --nic KIND --size BYTES``
    Measure a single one-way packet transfer and print its breakdown.
``trace SPEC.json [--out FILE]``
    Run one scenario with the per-packet span tracer on and export a
    Chrome-trace/Perfetto JSON timeline (see ``docs/observability.md``).
``trace --cluster KIND --count N [--out FILE]``
    Without a spec file: generate a synthetic Facebook-cluster trace
    (CSV to stdout or FILE).
``run-scenario SPEC.json [SPEC.json ...] [--jobs N] [--json PATH] [--trace PATH]``
    Build and run declarative scenarios (see ``examples/*.json``): the
    whole cluster in one simulator, packets live-traversing the fabric,
    per-flow latency percentiles printed and optionally written as a
    versioned artifact.  ``--trace`` additionally writes the merged
    Chrome-trace timeline of every scenario.
``run-chaos SPEC.json [...] [--drop P] [--corrupt P] [--kill LINK@NS]
[--switch-mode MODE] [--timeout-ns T] [--backoff B] [--budget N]``
    The fault-injecting twin of ``run-scenario``: every spec runs under
    a seeded :class:`~repro.faults.FaultSpec` (assembled from the flags,
    or the spec file's own ``faults`` section when no fault flag is
    given), with driver-level retransmission recovering losses.
``sweep TARGET [...] [--backend B] [--jobs N] [--workers N]
[--run-dir DIR] [--json PATH] [--base-seed N] [--allow-partial]``
    The job-oriented front door (:func:`repro.api.submit`): run
    experiment names and/or scenario spec files as a sharded sweep on
    a named backend — ``local`` (inline), ``pool`` (process pool), or
    ``workers`` (detached worker processes over a shared, resumable
    run directory; point extra machines at the same directory on a
    shared filesystem to distribute).  ``--run-dir`` checkpoints every
    shard and writes a provenance manifest; ``--json`` writes the
    deterministic sweep artifact (byte-identical across backends).
``resume RUNDIR [--backend B ...] [--json PATH] [--retry-failed]``
    Pick a killed or interrupted sweep back up: stale claims re-enter
    the queue, pending shards re-execute, and the artifact comes out
    byte-identical to an uninterrupted run.
``status RUNDIR``
    One line of shard counts for a run directory (live — works while
    workers are executing elsewhere).
``sweep-worker RUNDIR [--max-tasks N]``
    Drain a run directory's task queue in this process.  What the
    ``workers`` backend spawns; also the thing you start by hand on
    another machine to join a sweep.
``calibrate SPEC.json [--targets SEL ...] [--budget N] [--out DIR]
[--backend B] [--jobs N] [--workers N] [--run-dir DIR] [--base-seed N]
[--trace PATH]``
    Closed-loop calibration (see ``docs/calibration.md``): fit the
    ``*Calibrated*`` constants named by the search-space file to the
    paper-target bands, trial by trial over the sweep runtime.
    ``--targets`` selects registry targets by name or figure prefix
    (default: the hand-calibration's ``fig4`` + ``fig11`` set);
    ``--out`` writes the versioned calibrated-params artifact, its
    sidecar manifest, and the full trial log into a fresh directory;
    ``--run-dir`` checkpoints each search round so a killed run, re-run
    with the same arguments, resumes; ``--trace`` exports the search
    as a Chrome-trace timeline.
``targets [--markdown] [--artifact PATH]``
    Print the paper-target registry with bands.  ``--markdown`` emits
    the registry as the GitHub table ``EXPERIMENTS.md`` embeds;
    ``--artifact`` fills its measured/verdict columns from an
    experiments artifact.

This module deliberately imports only :mod:`repro.api` — the CLI is the
facade's first consumer.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import api

EXPERIMENT_BLURBS = {
    "table1": "system configuration (Table 1)",
    "fig4": "baseline NIC comparison + pcie.overh (Fig. 4)",
    "fig5": "iperf bandwidth vs. memory pressure (Fig. 5)",
    "fig7": "NIC DMA burst locality (Fig. 7)",
    "fig11": "latency breakdown: dNIC/iNIC/NetDIMM (Fig. 11)",
    "fig12a": "Facebook-trace replay, normalized latency (Fig. 12a)",
    "fig12b": "co-runner memory latency under DPI/L3F (Fig. 12b)",
    "bandwidth": "line-rate check, TX and RX (Sec. 5.2)",
    "ablation": "design-choice ablations",
    "transactions": "PCIe transaction census (Sec. 3)",
    "notification": "polling vs. interrupts (Sec. 2.1)",
    "kernel_stack": "kernel-stack dilution (Sec. 5.1)",
    "loaded_latency": "packet latency under host-memory pressure",
    "feasibility": "TDP budget + per-packet energy (Sec. 4.3)",
    "faults": "tail latency vs. drop rate under retransmission",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NetDIMM (MICRO 2019) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("experiments", help="run experiments")
    api.add_runner_arguments(run)

    commands.add_parser("list", help="list available experiments")

    oneway = commands.add_parser("oneway", help="measure one packet transfer")
    oneway.add_argument("--nic", choices=api.NIC_KINDS, default="netdimm")
    oneway.add_argument(
        "--size", type=api.positive_int, default=256, metavar="BYTES"
    )

    trace = commands.add_parser(
        "trace",
        help="span-trace a scenario spec (or generate a synthetic trace)",
    )
    trace.add_argument(
        "spec",
        nargs="?",
        default=None,
        metavar="SPEC",
        help="scenario spec JSON file to span-trace "
        "(omit for synthetic-trace mode)",
    )
    trace.add_argument(
        "--cluster",
        choices=[cluster.value for cluster in api.ClusterKind],
        default="webserver",
    )
    trace.add_argument("--count", type=api.positive_int, default=1000)
    trace.add_argument("--seed", type=int, default=2019)
    trace.add_argument("--out", default="-", help="output file ('-' = stdout)")

    def add_scenario_arguments(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "specs", nargs="+", metavar="SPEC", help="scenario spec JSON files"
        )
        subparser.add_argument(
            "--jobs",
            type=api.positive_int,
            default=1,
            metavar="N",
            help="worker processes (1 = run inline)",
        )
        subparser.add_argument(
            "--json",
            dest="json_path",
            metavar="PATH",
            help="write the versioned scenario artifact to PATH",
        )
        subparser.add_argument(
            "--trace",
            dest="trace_path",
            metavar="PATH",
            help="span-trace every scenario and write the merged "
            "Chrome-trace JSON to PATH",
        )

    scenario = commands.add_parser(
        "run-scenario", help="run declarative scenario spec files"
    )
    add_scenario_arguments(scenario)

    chaos = commands.add_parser(
        "run-chaos", help="run scenario spec files under fault injection"
    )
    add_scenario_arguments(chaos)
    chaos.add_argument(
        "--drop",
        type=float,
        default=0.0,
        metavar="P",
        help="per-link per-attempt drop probability",
    )
    chaos.add_argument(
        "--corrupt",
        type=float,
        default=0.0,
        metavar="P",
        help="per-link per-attempt bit-error probability",
    )
    chaos.add_argument(
        "--kill",
        action="append",
        default=[],
        metavar="LINK@NS[..NS]",
        help="kill a link at a time (repeatable); e.g. 'tx->rx@5000..9000'",
    )
    chaos.add_argument(
        "--switch-mode",
        choices=api.FAULT_SWITCH_MODES,
        default="backpressure",
        help="what a full switch queue does: stall ingress or drop",
    )
    chaos.add_argument(
        "--timeout-ns",
        type=float,
        default=50_000.0,
        metavar="T",
        help="initial retransmission timeout",
    )
    chaos.add_argument(
        "--backoff",
        type=float,
        default=2.0,
        metavar="B",
        help="exponential backoff factor between timeouts",
    )
    chaos.add_argument(
        "--budget",
        type=int,
        default=5,
        metavar="N",
        help="retransmit budget before a packet is declared lost",
    )

    sweep = commands.add_parser(
        "sweep",
        help="run experiments/scenarios as a sharded sweep on a backend",
    )
    sweep.add_argument(
        "targets",
        nargs="+",
        metavar="TARGET",
        help="experiment names and/or scenario spec JSON files",
    )
    sweep.add_argument(
        "--backend",
        choices=sorted(api.BACKENDS),
        default="local",
        help="execution backend (workers = resumable/distributed)",
    )
    sweep.add_argument(
        "--jobs", type=api.positive_int, default=1, metavar="N",
        help="process-pool width (pool backend)",
    )
    sweep.add_argument(
        "--workers", type=api.positive_int, default=2, metavar="N",
        help="worker-process count (workers backend)",
    )
    sweep.add_argument(
        "--run-dir", metavar="DIR",
        help="checkpoint shards here (required for --backend workers)",
    )
    sweep.add_argument(
        "--base-seed", type=int, default=0, metavar="N",
        help="base seed for per-shard seed derivation",
    )
    sweep.add_argument(
        "--json", dest="json_path", metavar="PATH",
        help="write the sweep artifact to PATH",
    )
    sweep.add_argument(
        "--allow-partial", action="store_true",
        help="assemble surviving shards even if some failed",
    )

    resume = commands.add_parser(
        "resume", help="resume an interrupted sweep from its run directory"
    )
    resume.add_argument("run_dir", metavar="RUNDIR")
    resume.add_argument(
        "--backend", choices=sorted(api.BACKENDS), default="local"
    )
    resume.add_argument("--jobs", type=api.positive_int, default=1, metavar="N")
    resume.add_argument(
        "--workers", type=api.positive_int, default=2, metavar="N"
    )
    resume.add_argument(
        "--retry-failed", action="store_true",
        help="re-enqueue failed shards as well",
    )
    resume.add_argument("--json", dest="json_path", metavar="PATH")
    resume.add_argument("--allow-partial", action="store_true")

    status = commands.add_parser(
        "status", help="show shard counts for a sweep run directory"
    )
    status.add_argument("run_dir", metavar="RUNDIR")

    worker = commands.add_parser(
        "sweep-worker", help="drain one sweep run directory's task queue"
    )
    worker.add_argument("run_dir", metavar="RUNDIR")
    worker.add_argument(
        "--max-tasks", type=api.positive_int, default=None, metavar="N"
    )

    calibrate = commands.add_parser(
        "calibrate",
        help="fit the *Calibrated* constants to paper-target bands",
    )
    calibrate.add_argument(
        "space", metavar="SPEC",
        help="search-space JSON file (see docs/calibration.md)",
    )
    calibrate.add_argument(
        "--targets", nargs="+", default=None, metavar="SEL",
        help="registry target names or figure prefixes "
        "(default: fig4 fig11)",
    )
    calibrate.add_argument(
        "--budget", type=api.positive_int, default=16, metavar="N",
        help="maximum number of evaluated trials",
    )
    calibrate.add_argument(
        "--out", dest="out_dir", metavar="DIR",
        help="write calibrated-params artifact + sidecar manifest + "
        "trial log here (refuses to overwrite)",
    )
    calibrate.add_argument(
        "--backend", choices=sorted(api.BACKENDS), default="local",
        help="sweep backend for the trial shards",
    )
    calibrate.add_argument(
        "--jobs", type=api.positive_int, default=1, metavar="N",
        help="process-pool width (pool backend)",
    )
    calibrate.add_argument(
        "--workers", type=api.positive_int, default=2, metavar="N",
        help="worker-process count (workers backend)",
    )
    calibrate.add_argument(
        "--run-dir", metavar="DIR",
        help="checkpoint search rounds here (re-run the same command "
        "to resume a killed calibration)",
    )
    calibrate.add_argument(
        "--base-seed", type=int, default=0, metavar="N",
        help="base seed for per-trial seed derivation",
    )
    calibrate.add_argument(
        "--trace", dest="trace_path", metavar="PATH",
        help="write the search as a Chrome-trace timeline",
    )

    targets = commands.add_parser(
        "targets", help="print the paper-target registry"
    )
    targets.add_argument(
        "--markdown", action="store_true",
        help="emit the registry as the GitHub table EXPERIMENTS.md embeds",
    )
    targets.add_argument(
        "--artifact", metavar="PATH",
        help="fill the measured/verdict columns from an experiments "
        "artifact (implies --markdown)",
    )
    return parser


def _cmd_list() -> str:
    width = max(len(name) for name in api.EXPERIMENTS)
    return "\n".join(
        f"{name:<{width}}  {EXPERIMENT_BLURBS.get(name, '')}"
        for name in api.EXPERIMENTS
    )


def _cmd_oneway(nic: str, size: int) -> str:
    result = api.measure_one_way(nic, size)
    lines = [f"{nic} one-way latency for a {size} B packet: {result.total_us:.2f} us"]
    for segment, ticks in result.segments.items():
        lines.append(f"  {segment:<14}{ticks / 1000:>8.0f} ns")
    return "\n".join(lines)


def _cmd_trace(cluster: str, count: int, seed: int, out: str) -> str:
    generator = api.TraceGenerator(api.ClusterKind(cluster), seed=seed)
    packets = generator.generate(count)
    if out == "-":
        lines = ["arrival_ps,size_bytes,locality"]
        lines.extend(
            f"{p.arrival},{p.size_bytes},{p.locality.value}" for p in packets
        )
        return "\n".join(lines)
    written = api.save_trace(packets, out)
    return f"wrote {written} packets to {out}"


def _cmd_trace_spec(spec_path: str, out: str) -> str:
    """Span-trace one scenario spec and export the Chrome-trace JSON."""
    spec = api.load_spec(spec_path)
    result, trace_document = api.trace_scenario(spec)
    rendered = api.dump_trace(trace_document)
    if out == "-":
        return rendered.rstrip("\n")
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(rendered)
    return api.format_report(result) + f"\nwrote trace: {out}"


def _describe_job(job) -> List[str]:
    """Shard-count summary plus structured diagnostics for failures."""
    status = job.status()
    line = (
        f"sweep {status['state']}: {status['done']}/{status['total']} "
        f"shard(s) done"
    )
    if status["failed"]:
        line += f", {status['failed']} failed"
    lines = [line]
    lines.extend(f"  {failure.summary()}" for failure in job.failures())
    return lines


def _finish_job(job, json_path: str, allow_partial: bool) -> tuple:
    """Common tail of ``sweep`` and ``resume``: report, emit, exit code."""
    lines = _describe_job(job)
    if json_path:
        job.artifact(json_path, allow_partial=allow_partial)
        lines.append(f"wrote artifact: {json_path}")
        if job.config.run_dir:
            lines.append(
                f"wrote manifest: {job.config.run_dir}/manifest.json"
            )
        else:
            lines.append(f"wrote manifest: {json_path}.manifest.json")
    return "\n".join(lines), 1 if job.failures() else 0


def _cmd_status(run_dir: str) -> str:
    state = api.RunState.load(run_dir)
    counts = state.counts()
    extra = ""
    manifest = state.read_manifest()
    if manifest is not None:
        extra = f"  [manifest: {manifest['run']['status']}]"
    return (
        f"{run_dir}: {counts['done']}/{counts['total']} done, "
        f"{counts['failed']} failed, {counts['claimed']} claimed, "
        f"{counts['queued']} queued{extra}"
    )


def _cmd_targets(markdown: bool = False, artifact: str = "") -> str:
    if artifact:
        markdown = True
    if markdown:
        measured = None
        if artifact:
            document = api.load_artifact(artifact)
            measured = {}
            for entry in document.get("experiments", {}).values():
                measured.update(entry.get("metrics", {}))
        return api.registry_markdown(measured=measured).rstrip("\n")
    lines = [f"{'target':<40}{'paper':>9}{'band':>18}"]
    for target in api.PAPER_TARGETS.values():
        band = f"[{target.low:g}, {target.high:g}]"
        lines.append(f"{target.name:<40}{target.paper_value:>9g}{band:>18}")
    return "\n".join(lines)


def _cmd_calibrate(args: argparse.Namespace) -> str:
    report = api.calibrate(
        args.space,
        targets=args.targets,
        budget=args.budget,
        backend=args.backend,
        jobs=args.jobs,
        workers=args.workers,
        run_dir=args.run_dir,
        base_seed=args.base_seed,
        out_dir=args.out_dir,
    )
    failed = len(report.failures())
    lines = [
        f"calibration: {len(report.trials)} trial(s) over "
        f"{report.rounds} round(s), {len(report.targets)} target(s)"
        + (f", {failed} failed trial(s)" if failed else "")
    ]
    baseline = report.baseline
    if baseline is not None and baseline.ok:
        lines.append(
            f"  defaults: loss {baseline.loss:.4f}, "
            f"{baseline.targets_passed}/{baseline.targets_total} "
            f"target(s) in band"
        )
    best = report.best
    if best is None:
        lines.append("  no successful trial; see the failure diagnostics")
        return "\n".join(lines)
    lines.append(
        f"  best:     loss {best.loss:.4f}, "
        f"{best.targets_passed}/{best.targets_total} target(s) in band"
    )
    for axis in report.space.axes:
        value = best.overrides.get(axis.param, axis.default_ticks)
        marker = "" if value == axis.default_ticks else "  (moved)"
        lines.append(
            f"    {axis.param:<32}{value:>9} ticks "
            f"(default {axis.default_ticks}){marker}"
        )
    if args.out_dir:
        lines.append(f"wrote artifact: {args.out_dir}/{api.ARTIFACT_NAME}")
        lines.append(
            f"wrote manifest: {args.out_dir}/{api.ARTIFACT_NAME}.manifest.json"
        )
    if args.trace_path:
        document = api.calibration_trace(report.to_dict())
        with open(args.trace_path, "w", encoding="utf-8") as handle:
            handle.write(api.dump_trace(document))
        lines.append(f"wrote trace: {args.trace_path}")
    return "\n".join(lines)


def _chaos_overlay(args: argparse.Namespace):
    """The FaultSpec overlay from the chaos flags, or None.

    None means "no fault flag given": each spec file's own ``faults``
    section applies (or a default FaultSpec when it has none), so
    ``run-chaos spec.json`` without flags is still a chaos run.
    """
    defaults = (
        args.drop == 0.0
        and args.corrupt == 0.0
        and not args.kill
        and args.switch_mode == "backpressure"
        and args.timeout_ns == 50_000.0
        and args.backoff == 2.0
        and args.budget == 5
    )
    if defaults:
        return None
    return api.build_fault_overlay(
        drop=args.drop,
        corrupt=args.corrupt,
        switch_mode=args.switch_mode,
        kills=[api.parse_kill(text) for text in args.kill],
        timeout_ns=args.timeout_ns,
        backoff=args.backoff,
        budget=args.budget,
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    exit_code = 0
    if args.command == "experiments":
        try:
            output, exit_code = api.run_experiment_cli(args)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    elif args.command == "list":
        output = _cmd_list()
    elif args.command == "oneway":
        output = _cmd_oneway(args.nic, args.size)
    elif args.command == "trace":
        if args.spec is not None:
            try:
                output = _cmd_trace_spec(args.spec, args.out)
            except (OSError, ValueError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        else:
            output = _cmd_trace(args.cluster, args.count, args.seed, args.out)
    elif args.command == "run-scenario":
        try:
            output, exit_code = api.run_scenario_cli(
                args.specs,
                jobs=args.jobs,
                json_path=args.json_path or "",
                trace_path=args.trace_path or "",
            )
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    elif args.command == "run-chaos":
        try:
            output, exit_code = api.run_chaos_cli(
                args.specs,
                faults=_chaos_overlay(args),
                jobs=args.jobs,
                json_path=args.json_path or "",
                trace_path=args.trace_path or "",
            )
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    elif args.command == "sweep":
        try:
            job = api.submit(
                args.targets,
                backend=args.backend,
                jobs=args.jobs,
                workers=args.workers,
                run_dir=args.run_dir,
                base_seed=args.base_seed,
            )
            job.run()
            output, exit_code = _finish_job(
                job, args.json_path or "", args.allow_partial
            )
        except api.JobError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        except (OSError, ValueError, RuntimeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    elif args.command == "resume":
        try:
            job = api.resume(
                args.run_dir,
                config=api.SweepConfig(
                    backend=args.backend,
                    jobs=args.jobs,
                    workers=args.workers,
                    run_dir=args.run_dir,
                ),
                retry_failed=args.retry_failed,
            )
            output, exit_code = _finish_job(
                job, args.json_path or "", args.allow_partial
            )
        except api.JobError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        except (OSError, ValueError, RuntimeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    elif args.command == "status":
        try:
            output = _cmd_status(args.run_dir)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    elif args.command == "sweep-worker":
        argv_tail = [args.run_dir]
        if args.max_tasks is not None:
            argv_tail += ["--max-tasks", str(args.max_tasks)]
        return api.sweep_worker_main(argv_tail)
    elif args.command == "calibrate":
        try:
            output = _cmd_calibrate(args)
        except FileExistsError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        except (OSError, ValueError, RuntimeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:  # targets
        try:
            output = _cmd_targets(args.markdown, args.artifact or "")
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    try:
        print(output)
    except BrokenPipeError:  # e.g. `repro targets | head`
        pass
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
