"""Persisting a calibration: the calibrated-params artifact + sidecar.

One :func:`write_calibration` call writes three files into ``out_dir``:

``calibrated-params.json``
    The ``netdimm-repro/calibrated-params`` v1 artifact — the winning
    overrides in :func:`repro.params.apply_overrides` shape, plus
    per-constant provenance (default, fitted value, constraining
    figures, note) and the fitness summary.  Deterministic: the same
    calibration renders byte-identically on any backend, so CI can
    ``cmp`` serial against pooled runs.  Load it back with
    :func:`repro.params.calibrated_system_params`.

``calibrated-params.json.manifest.json``
    The sidecar manifest: base seed, search space, targets, budget,
    trial counts, per-constant constraining figures, and the code
    provenance (git revision, package version, python).  Carries the
    run timestamp, so it is intentionally *outside* the byte-identity
    guarantee.

``trials.json``
    The full :class:`~repro.calib.search.CalibrationReport` document —
    every trial with per-target diagnostics, for audits and
    :func:`repro.telemetry.calibration_trace`.

Per the repo's artifact rules, nothing is ever overwritten: any
pre-existing target file raises :class:`FileExistsError` before a
single byte is written.
"""

from __future__ import annotations

import json
import os
import sys
from datetime import datetime, timezone
from typing import Any, Dict

from repro import __version__
from repro.calib.search import CalibrationReport
from repro.calib.space import nested_overrides
from repro.params import (
    CALIBRATED_PARAMS_SCHEMA,
    CALIBRATED_PARAMS_SCHEMA_VERSION,
)
from repro.runtime.provenance import git_revision

__all__ = [
    "CALIBRATION_MANIFEST_SCHEMA",
    "ARTIFACT_NAME",
    "build_artifact",
    "build_sidecar_manifest",
    "write_calibration",
]

CALIBRATION_MANIFEST_SCHEMA = "netdimm-repro/calibration-manifest"
ARTIFACT_NAME = "calibrated-params.json"


def _render(document: Dict[str, Any]) -> str:
    """The repo's canonical artifact rendering (docs/artifacts.md)."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def build_artifact(report: CalibrationReport) -> Dict[str, Any]:
    """The calibrated-params v1 document for this report's winner."""
    best = report.best
    if best is None:
        raise ValueError(
            "calibration produced no successful trial; nothing to "
            "persist (inspect report.failures() for diagnostics)"
        )
    baseline = report.baseline
    constants = {}
    for axis in report.space.axes:
        value = best.overrides.get(axis.param, axis.default_ticks)
        constants[axis.param] = {
            "value": value,
            "default": axis.default_ticks,
            "unit": "ticks",
            "figures": list(axis.constant.figures),
            "note": axis.constant.note,
            "targets": [
                name
                for name in report.targets
                if name.split(".", 1)[0] in axis.constant.figures
            ],
        }
    fitness: Dict[str, Any] = {
        "loss": best.loss,
        "targets_passed": best.targets_passed,
        "targets_total": best.targets_total,
        "targets": best.diagnostics.get("targets", {}),
    }
    if baseline is not None and baseline.ok:
        fitness["baseline"] = {
            "param_id": baseline.param_id,
            "loss": baseline.loss,
            "targets_passed": baseline.targets_passed,
        }
    return {
        "schema": CALIBRATED_PARAMS_SCHEMA,
        "schema_version": CALIBRATED_PARAMS_SCHEMA_VERSION,
        "note": (
            "Fitted values for *Calibrated* constants only; apply over "
            "the shipped defaults with "
            "repro.params.calibrated_system_params()."
        ),
        "param_id": best.param_id,
        "overrides": nested_overrides(best.overrides),
        "constants": constants,
        "fitness": fitness,
        "targets": list(report.targets),
    }


def build_sidecar_manifest(report: CalibrationReport) -> Dict[str, Any]:
    """The run-provenance sidecar (timestamps allowed here, not above)."""
    best = report.best
    failed = len(report.failures())
    return {
        "schema": CALIBRATION_MANIFEST_SCHEMA,
        "schema_version": 1,
        "artifact": ARTIFACT_NAME,
        "base_seed": report.base_seed,
        "budget": report.budget,
        "rounds": report.rounds,
        "targets": list(report.targets),
        "search_space": report.space.to_dict(),
        "trials": {
            "total": len(report.trials),
            "ok": len(report.trials) - failed,
            "failed": failed,
        },
        "best": best.param_id if best else None,
        "constants": {
            axis.param: {"figures": list(axis.constant.figures)}
            for axis in report.space.axes
        },
        "code": {
            "git_revision": git_revision(),
            "repro_version": __version__,
            "python": sys.version.split()[0],
        },
        "created_utc": datetime.now(timezone.utc).isoformat(),
    }


def write_calibration(report: CalibrationReport, out_dir: str) -> Dict[str, str]:
    """Write artifact + sidecar + trials into ``out_dir``; return paths.

    Refuses to overwrite: if any target file already exists the call
    raises :class:`FileExistsError` and writes nothing — version
    calibrations by directory (``results/calib/v1``, ``v2``, ...).
    """
    documents = {
        ARTIFACT_NAME: build_artifact(report),
        ARTIFACT_NAME + ".manifest.json": build_sidecar_manifest(report),
        "trials.json": report.to_dict(),
    }
    os.makedirs(out_dir, exist_ok=True)
    paths = {name: os.path.join(out_dir, name) for name in documents}
    for path in paths.values():
        if os.path.exists(path):
            raise FileExistsError(
                f"refusing to overwrite {path}; calibration artifacts "
                "are immutable — write into a fresh versioned directory"
            )
    for name, document in documents.items():
        with open(paths[name], "w", encoding="utf-8") as handle:
            handle.write(_render(document))
    return paths
