"""Candidate evaluation: one parameter set → per-target losses.

A calibration trial is one full experiment pass under a candidate
:class:`~repro.params.SystemParams` (the shipped defaults patched by
the candidate's overrides), scored against the selected subset of the
``PAPER_TARGETS`` registry with :meth:`Target.loss` — normalized so 0
is the paper's value, 1 the band edge.

Only experiments that (a) take a ``params`` argument and (b) publish
registry-named metrics can constrain a fit; :data:`SUPPORTED_FIGURES`
lists them.  Target selection is by full registry name or by figure
prefix (``"fig11"`` selects every ``fig11.*`` target); the default
set — ``fig4`` + ``fig11`` — is the same pair of figures the shipped
constants were hand-calibrated against (``docs/calibration.md``).

The module registers the ``"calib"`` task kind with the sweep
runtime, so a trial is an ordinary shard: executed by any backend,
checkpointed in run directories, SIGKILL-survivable, and — on
failure — recorded as a structured :class:`ShardFailure`, never a
fabricated ``inf`` loss.
"""

from __future__ import annotations

import importlib
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.analysis.targets import PAPER_TARGETS, aggregate_loss
from repro.calib.space import nested_overrides
from repro.params import DEFAULT, apply_overrides

__all__ = [
    "SUPPORTED_FIGURES",
    "DEFAULT_TARGET_SELECTORS",
    "select_targets",
    "experiments_for",
    "evaluate_candidate",
]

SUPPORTED_FIGURES = (
    "fig4",
    "fig5",
    "fig7",
    "fig11",
    "fig12a",
    "fig12b",
    "bandwidth",
)
"""Target-name prefixes whose owning experiments accept ``params``."""

DEFAULT_TARGET_SELECTORS = ("fig4", "fig11")
"""The figures the shipped constants were calibrated against."""


def select_targets(
    selectors: Optional[Sequence[str]] = None,
) -> List[str]:
    """Resolve target selectors to registry names, in registry order.

    Each selector is either a full ``PAPER_TARGETS`` name or a figure
    prefix (everything before the first ``.``).  ``None`` selects the
    default ``fig4`` + ``fig11`` set.  Unknown selectors — and
    selectors whose experiment cannot be re-run under candidate
    params (e.g. a name outside :data:`SUPPORTED_FIGURES`) — raise.

    >>> select_targets(["fig7"])
    ['fig7.lines_per_burst', 'fig7.third_burst_ns']
    """
    chosen = list(selectors) if selectors else list(DEFAULT_TARGET_SELECTORS)
    names: List[str] = []
    for selector in chosen:
        if selector in PAPER_TARGETS:
            matches = [selector]
        else:
            matches = [
                name
                for name in PAPER_TARGETS
                if name.split(".", 1)[0] == selector
            ]
        if not matches:
            figures = sorted({n.split(".", 1)[0] for n in PAPER_TARGETS})
            raise ValueError(
                f"unknown target selector {selector!r}; use a registry "
                f"name or a figure prefix from {figures}"
            )
        for name in matches:
            if name.split(".", 1)[0] not in SUPPORTED_FIGURES:
                raise ValueError(
                    f"target {name!r} cannot constrain a calibration: "
                    f"its experiment does not take candidate params "
                    f"(supported figures: {list(SUPPORTED_FIGURES)})"
                )
            if name not in names:
                names.append(name)
    return names


def experiments_for(target_names: Sequence[str]) -> List[str]:
    """The experiments that must run to measure these targets."""
    seen: List[str] = []
    for name in target_names:
        figure = name.split(".", 1)[0]
        if figure not in seen:
            seen.append(figure)
    return seen


def evaluate_candidate(
    overrides: Mapping[str, int], target_names: Sequence[str]
) -> Dict[str, Any]:
    """Run one candidate's experiments and score them.

    ``overrides`` is the flat ``{"section.field": ticks}`` candidate
    (empty = shipped defaults); ``target_names`` the registry names to
    score.  Returns the JSON-safe trial payload: the aggregate
    normalized loss, how many targets landed in band, and per-target
    diagnostics (measured value, loss, band, verdict).  Any failure —
    a candidate that breaks the simulation, a metric the experiment
    did not emit — propagates as an exception for the runtime's shard
    fence to capture as structured diagnostics.
    """
    params = apply_overrides(DEFAULT, nested_overrides(overrides))
    metrics: Dict[str, float] = {}
    for figure in experiments_for(target_names):
        module = importlib.import_module(f"repro.experiments.{figure}")
        metrics.update(module.run(params=params).metrics())
    loss, per_target = aggregate_loss(metrics, names=target_names)
    return {
        "overrides": {name: int(overrides[name]) for name in sorted(overrides)},
        "loss": loss,
        "targets_passed": sum(1 for t in per_target.values() if t["ok"]),
        "targets_total": len(per_target),
        "targets": per_target,
    }


def _calib_executor(args: Dict[str, Any]) -> Dict[str, Any]:
    """The ``"calib"`` task-kind executor: args in, trial payload out."""
    payload = evaluate_candidate(
        args.get("overrides") or {}, args["targets"]
    )
    payload["param_id"] = args.get("param_id", "")
    return payload


def _calib_assembler(
    meta: Dict[str, Any], results: Sequence[Any]
) -> Dict[str, Any]:
    """Assemble one round's shard payloads into a trials document."""
    ordered = sorted(results, key=lambda result: result.index)
    return {
        "schema": "netdimm-repro/calib-trials",
        "schema_version": 1,
        "job": {
            "base_seed": meta.get("base_seed", 0),
            "targets": meta.get("targets", []),
        },
        "trials": [result.payload for result in ordered],
    }
