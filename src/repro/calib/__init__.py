"""Closed-loop calibration: fit *Calibrated* constants to paper targets.

The shipped :data:`repro.params.DEFAULT` constants fall in two classes
(``docs/calibration.md``): paper-stated/datasheet values, which are
evidence and must not move, and ``*Calibrated*`` values, which were
hand-fit so the model lands inside the ``PAPER_TARGETS`` acceptance
bands.  This package closes that loop mechanically:

- :mod:`repro.calib.space` — the whitelist of calibratable constants
  (:data:`CALIBRATABLE`) and the :class:`SearchSpace`/:class:`Axis`
  declaration of what a run may move;
- :mod:`repro.calib.evaluate` — one candidate → experiments →
  per-target normalized losses, registered as the ``"calib"`` sweep
  task kind;
- :mod:`repro.calib.search` — the budgeted search
  (:class:`CoordinateDescent` by default, :class:`Strategy` is
  pluggable) run through the distributed sweep runtime, so trials
  shard across processes/machines and resume after SIGKILL;
- :mod:`repro.calib.artifact` — the versioned
  ``netdimm-repro/calibrated-params`` artifact plus sidecar manifest.

Front doors: :func:`repro.api.calibrate` and
``python -m repro calibrate SPEC --targets fig11 --budget 24 --out DIR``.

>>> from repro.calib import SearchSpace, Axis, param_id
>>> space = SearchSpace(axes=(Axis(param="software.copy_base",
...     low_ns=140, high_ns=220, step_ns=20),))
>>> space.defaults()
{'software.copy_base': 180000}
>>> param_id(space.defaults())
'calib[software.copy_base=180000]'
"""

from repro.calib.artifact import (
    ARTIFACT_NAME,
    CALIBRATION_MANIFEST_SCHEMA,
    build_artifact,
    build_sidecar_manifest,
    write_calibration,
)
from repro.calib.evaluate import (
    DEFAULT_TARGET_SELECTORS,
    SUPPORTED_FIGURES,
    _calib_assembler,
    _calib_executor,
    evaluate_candidate,
    experiments_for,
    select_targets,
)
from repro.calib.search import (
    CalibrationReport,
    CoordinateDescent,
    Strategy,
    Trial,
    calibrate,
)
from repro.calib.space import (
    CALIBRATABLE,
    Axis,
    CalibratedConstant,
    SearchSpace,
    nested_overrides,
    param_id,
)
from repro.runtime.job import register_assembler
from repro.runtime.tasks import register_kind

__all__ = [
    "CALIBRATABLE",
    "CalibratedConstant",
    "Axis",
    "SearchSpace",
    "param_id",
    "nested_overrides",
    "SUPPORTED_FIGURES",
    "DEFAULT_TARGET_SELECTORS",
    "select_targets",
    "experiments_for",
    "evaluate_candidate",
    "Trial",
    "Strategy",
    "CoordinateDescent",
    "CalibrationReport",
    "calibrate",
    "ARTIFACT_NAME",
    "CALIBRATION_MANIFEST_SCHEMA",
    "build_artifact",
    "build_sidecar_manifest",
    "write_calibration",
]

# Importing the package is what plugs calibration into the sweep
# runtime; runtime.tasks/_ensure_registered lazy-imports repro.calib
# for exactly this side effect.
register_kind("calib", _calib_executor)
register_assembler("calib", _calib_assembler)
