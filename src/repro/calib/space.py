"""The calibration search space: which constants may move, and how far.

Only constants marked ``*Calibrated*`` in :mod:`repro.params` are
tunable — everything else is paper-stated, cited, or datasheet-sourced
and moving it would un-reproduce the paper rather than re-fit the
model.  :data:`CALIBRATABLE` is that whitelist: one entry per
calibratable constant, carrying the provenance note and the paper
figure(s) whose targets constrain it (``docs/calibration.md`` renders
the same table for humans).

A :class:`SearchSpace` is a list of :class:`Axis` entries — a
whitelisted constant plus bounds and a step, authored in nanoseconds
(the unit the provenance notes speak) and stored in simulator ticks.
Spaces round-trip through JSON strictly: unknown keys and
non-whitelisted constants are errors, not warnings.

Candidate identity is the canonical :func:`param_id` string of the
candidate's tick values, which is also what seeds the trial via
``runtime.seeds.derive(param_id, base_seed)`` — stable across
processes and interpreter restarts, never ``hash()``.

>>> axis = Axis(param="software.copy_base", low_ns=140, high_ns=220,
...             step_ns=20)
>>> axis.default_ticks
180000
>>> param_id({"software.copy_base": 160000})
'calib[software.copy_base=160000]'
>>> param_id({})
'calib[baseline]'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.params import DEFAULT, SystemParams
from repro.units import ns

__all__ = [
    "CALIBRATABLE",
    "CalibratedConstant",
    "Axis",
    "SearchSpace",
    "param_id",
    "nested_overrides",
]


@dataclass(frozen=True)
class CalibratedConstant:
    """One whitelisted constant: its provenance and its constraints."""

    name: str
    """Dotted ``section.field`` path inside :class:`SystemParams`."""

    figures: Tuple[str, ...]
    """Paper-figure prefixes (= target-name prefixes in
    ``PAPER_TARGETS``) whose acceptance bands constrain this constant."""

    note: str
    """The ``*Calibrated*`` provenance note, condensed from params.py /
    docs/calibration.md."""


CALIBRATABLE: Dict[str, CalibratedConstant] = {
    constant.name: constant
    for constant in [
        CalibratedConstant(
            "software.tx_setup",
            ("fig11",),
            "driver TX entry cost; calibrated within Fig. 11's txCopy "
            "segment",
        ),
        CalibratedConstant(
            "software.rx_skb_alloc",
            ("fig11",),
            "SKB allocation on RX; calibrated within Fig. 11's rxCopy "
            "segment",
        ),
        CalibratedConstant(
            "software.copy_base",
            ("fig4", "fig11"),
            "fixed per-copy buffer-management cost; calibrated so zero "
            "copy helps even 10 B packets by ~29% (Fig. 4)",
        ),
        CalibratedConstant(
            "software.zero_copy_pin_cost",
            ("fig4",),
            "per-packet pin/unpin bookkeeping; same Fig. 4 constraint "
            "as copy_base",
        ),
        CalibratedConstant(
            "software.copy_line_initial",
            ("fig11",),
            "latency-bound memcpy cost per line; Fig. 11's "
            "latency-vs-size slopes",
        ),
        CalibratedConstant(
            "software.copy_line_steady",
            ("fig11",),
            "streaming memcpy cost per line; Fig. 11 slopes and the "
            "paper's ~1 us 4 KB page copy",
        ),
        CalibratedConstant(
            "software.copy_line_llc",
            ("fig11",),
            "LLC-resident (DDIO) RX copy cost per line; iNIC "
            "large-packet totals in Fig. 11",
        ),
        CalibratedConstant(
            "software.flush_base",
            ("fig11",),
            "txFlush issue cost; flush+invalidate must land in the "
            "9.7-15.8% share of Sec. 5.2",
        ),
        CalibratedConstant(
            "software.invalidate_base",
            ("fig11",),
            "rxInvalidate cost; same Sec. 5.2 share constraint as "
            "flush_base",
        ),
        CalibratedConstant(
            "software.alloc_cache_hit",
            ("fig11",),
            "allocCache hit path; inside NetDIMM's absolute totals "
            "(Fig. 11 right)",
        ),
        CalibratedConstant(
            "pcie.propagation",
            ("fig4", "fig11"),
            "one-way TLP traversal; dNIC's ~0.42 us I/O-register "
            "segment and 64 B total",
        ),
        CalibratedConstant(
            "pcie.completion_overhead",
            ("fig4", "fig11"),
            "read-to-completion device latency; jointly calibrated "
            "with pcie.propagation",
        ),
        CalibratedConstant(
            "pcie.dma_line_cost_initial",
            ("fig11",),
            "line-granular DMA pipeline cost; the dNIC's steep "
            "64-256 B slope in Fig. 11",
        ),
        CalibratedConstant(
            "pcie.dma_line_cost_steady",
            ("fig11",),
            "primed DMA pipeline cost; the dNIC's 256 B-8 KB slope",
        ),
        CalibratedConstant(
            "nic.dma_setup",
            ("fig11",),
            "per-transfer DMA-engine startup; Fig. 11's txDMA/rxDMA "
            "segments",
        ),
        CalibratedConstant(
            "nic.inic_line_cost",
            ("fig4", "fig11"),
            "coherent-fabric DMA cost per line; iNIC's improvement "
            "must shrink ~35%→~20% with size (Fig. 4)",
        ),
        CalibratedConstant(
            "nic.inic_line_cost_steady",
            ("fig4", "fig11"),
            "primed on-die DMA cost per line; same Fig. 4 shape "
            "constraint",
        ),
        CalibratedConstant(
            "network.mac_phy_latency",
            ("fig11", "fig12a"),
            "per-side MAC+PHY pipeline; the wire segment of Fig. 11 "
            "at small sizes",
        ),
    ]
}
"""Every constant the calibrator may move, keyed by dotted path."""


def _lookup_default(name: str, params: SystemParams = DEFAULT) -> int:
    section, field_name = name.split(".", 1)
    return getattr(getattr(params, section), field_name)


@dataclass(frozen=True)
class Axis:
    """One search dimension: a whitelisted constant, bounds, and step.

    Bounds and step are authored in nanoseconds; :attr:`low_ticks` /
    :attr:`high_ticks` / :attr:`step_ticks` are the simulator-tick
    equivalents the search actually moves in.
    """

    param: str
    low_ns: float
    high_ns: float
    step_ns: float

    def __post_init__(self) -> None:
        if self.param not in CALIBRATABLE:
            raise ValueError(
                f"{self.param!r} is not a calibratable constant; the "
                f"whitelist (constants marked *Calibrated* in "
                f"params.py) is: {sorted(CALIBRATABLE)}"
            )
        # Canonicalize the bounds (140 == 140.0 must serialize the same
        # whether the axis came from code or from a JSON file — the
        # byte-identity tests compare report documents across both).
        for name in ("low_ns", "high_ns", "step_ns"):
            value = float(getattr(self, name))
            object.__setattr__(
                self, name, int(value) if value.is_integer() else value
            )
        if not self.low_ns < self.high_ns:
            raise ValueError(
                f"{self.param}: low_ns ({self.low_ns}) must be below "
                f"high_ns ({self.high_ns})"
            )
        if self.step_ns <= 0:
            raise ValueError(f"{self.param}: step_ns must be positive")

    @property
    def low_ticks(self) -> int:
        return ns(self.low_ns)

    @property
    def high_ticks(self) -> int:
        return ns(self.high_ns)

    @property
    def step_ticks(self) -> int:
        return max(1, ns(self.step_ns))

    @property
    def default_ticks(self) -> int:
        """The shipped default of this constant, in ticks."""
        return _lookup_default(self.param)

    @property
    def constant(self) -> CalibratedConstant:
        return CALIBRATABLE[self.param]

    def clamp(self, ticks: int) -> int:
        """``ticks`` limited to this axis's bounds."""
        return max(self.low_ticks, min(self.high_ticks, int(ticks)))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "param": self.param,
            "low_ns": self.low_ns,
            "high_ns": self.high_ns,
            "step_ns": self.step_ns,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "Axis":
        unknown = set(document) - {"param", "low_ns", "high_ns", "step_ns"}
        if unknown:
            raise ValueError(
                f"unknown axis key(s): {sorted(unknown)} "
                "(expected param/low_ns/high_ns/step_ns)"
            )
        try:
            return cls(
                param=document["param"],
                low_ns=float(document["low_ns"]),
                high_ns=float(document["high_ns"]),
                step_ns=float(document["step_ns"]),
            )
        except KeyError as missing:
            raise ValueError(f"axis is missing required key {missing}") from None


@dataclass(frozen=True)
class SearchSpace:
    """The axes a calibration run may move, in declaration order."""

    axes: Tuple[Axis, ...]

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("a search space needs at least one axis")
        names = [axis.param for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis param in search space: {names}")

    def defaults(self) -> Dict[str, int]:
        """The shipped defaults, clamped into bounds — the start point."""
        return {axis.param: axis.clamp(axis.default_ticks) for axis in self.axes}

    def to_dict(self) -> Dict[str, Any]:
        return {"axes": [axis.to_dict() for axis in self.axes]}

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "SearchSpace":
        unknown = set(document) - {"axes"}
        if unknown:
            raise ValueError(
                f"unknown search-space key(s): {sorted(unknown)} "
                "(expected only 'axes')"
            )
        axes = document.get("axes")
        if not isinstance(axes, (list, tuple)):
            raise ValueError("search space needs an 'axes' list")
        return cls(axes=tuple(Axis.from_dict(entry) for entry in axes))


def param_id(overrides: Mapping[str, int]) -> str:
    """The canonical trial identity for a candidate's tick overrides.

    Sorted ``name=ticks`` pairs inside ``calib[...]`` — the same
    candidate always gets the same id (and therefore, via
    ``derive(param_id, base_seed)``, the same trial seed) regardless
    of axis order, backend, or process.  The empty candidate — the
    shipped defaults, always evaluated as the reference trial — is
    ``calib[baseline]``.
    """
    if not overrides:
        return "calib[baseline]"
    inner = ",".join(
        f"{name}={int(overrides[name])}" for name in sorted(overrides)
    )
    return f"calib[{inner}]"


def nested_overrides(flat: Mapping[str, int]) -> Dict[str, Dict[str, int]]:
    """Flat ``{"software.copy_base": t}`` → ``apply_overrides`` shape."""
    nested: Dict[str, Dict[str, int]] = {}
    for name, ticks in flat.items():
        section, field_name = name.split(".", 1)
        nested.setdefault(section, {})[field_name] = int(ticks)
    return nested
