"""The budgeted calibration search, on top of the sweep runtime.

One calibration run is a sequence of *rounds*; each round is an
ordinary sweep :class:`~repro.runtime.job.Job` of ``"calib"`` task
shards (one per candidate), so every property the runtime guarantees
for sweeps holds for calibration unchanged: any backend
(``SweepConfig(backend="local" | "pool" | "workers")``), byte-identical
trial results across backends, run-directory checkpoints, and
SIGKILL-then-rerun resume.  With a ``run_dir``, round *k* checkpoints
under ``<run_dir>/round-000k``; re-running the same calibration
replays completed rounds from their checkpoints (the search is a
deterministic function of the trial results) and resumes the
interrupted one.

The strategy is pluggable (:class:`Strategy`); the default
:class:`CoordinateDescent` is a pattern search with grid refinement:
evaluate the ± one-step neighbors of the incumbent along every axis,
move to the best trial seen so far, and halve the step when no
neighbor improves.  Crude, but the loss surface here is a handful of
monotone timing knobs — and the point of the design is that a better
strategy slots in without touching the trial plumbing.

A trial that raises — a candidate that breaks the simulation, a
missing metric — becomes a *failed* :class:`Trial` carrying the
shard's structured diagnostics under ``diagnostics["error"]``.  It
never scores: no fabricated ``inf`` loss, no placeholder result
(SNIPPETS.md Snippet 2's rule), and the search simply routes around
it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.calib.evaluate import select_targets
from repro.calib.space import SearchSpace, param_id
from repro.runtime.backends import SweepConfig
from repro.runtime.job import Job
from repro.runtime.state import RunState
from repro.runtime.tasks import Outcome, ShardResult, Task

__all__ = [
    "Trial",
    "Strategy",
    "CoordinateDescent",
    "CalibrationReport",
    "REPORT_SCHEMA",
    "REPORT_SCHEMA_VERSION",
    "calibrate",
]

REPORT_SCHEMA = "netdimm-repro/calib-report"
REPORT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Trial:
    """One evaluated candidate — successful or failed, never faked.

    ``status == "ok"``: ``loss``/``targets_passed`` are set and
    ``diagnostics["targets"]`` carries the per-target breakdown.
    ``status == "failed"``: the scores are ``None`` (absent from the
    document, not fabricated) and ``diagnostics["error"]`` carries the
    shard's exception type, message, and traceback.
    """

    param_id: str
    overrides: Dict[str, int]
    seed: int
    round_index: int
    status: str
    loss: Optional[float] = None
    targets_passed: Optional[int] = None
    targets_total: Optional[int] = None
    diagnostics: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "param_id": self.param_id,
            "overrides": {k: self.overrides[k] for k in sorted(self.overrides)},
            "seed": self.seed,
            "round": self.round_index,
            "status": self.status,
            "diagnostics": self.diagnostics,
        }
        if self.ok:
            document["loss"] = self.loss
            document["targets_passed"] = self.targets_passed
            document["targets_total"] = self.targets_total
        return document


def _trial_from_outcome(
    outcome: Outcome, overrides: Mapping[str, int], round_index: int
) -> Trial:
    if isinstance(outcome, ShardResult):
        payload = outcome.payload
        return Trial(
            param_id=payload["param_id"],
            overrides=dict(payload["overrides"]),
            seed=outcome.seed,
            round_index=round_index,
            status="ok",
            loss=payload["loss"],
            targets_passed=payload["targets_passed"],
            targets_total=payload["targets_total"],
            diagnostics={"targets": payload["targets"]},
        )
    return Trial(
        param_id=outcome.task_id,
        overrides=dict(overrides),
        seed=outcome.seed,
        round_index=round_index,
        status="failed",
        diagnostics={
            "error": {
                "exception_type": outcome.exception_type,
                "message": outcome.message,
                "traceback": outcome.traceback,
            }
        },
    )


def _best_trial(trials: Sequence[Trial]) -> Optional[Trial]:
    """Most bands passed, then lowest loss, then stable id order."""
    scored = [t for t in trials if t.ok]
    if not scored:
        return None
    return min(
        scored, key=lambda t: (-t.targets_passed, t.loss, t.param_id)
    )


class Strategy:
    """A search strategy: trials so far in, next candidate batch out.

    :meth:`propose` is called once per round with *every* trial
    evaluated so far (in evaluation order) and returns the next
    round's candidates as flat ``{"section.field": ticks}`` points —
    or ``[]`` to end the search.  Implementations must be
    deterministic functions of the trial sequence: that is what makes
    a killed-and-rerun calibration replay to the same answer.
    """

    def propose(
        self, space: SearchSpace, trials: Sequence[Trial]
    ) -> List[Dict[str, int]]:
        raise NotImplementedError


class CoordinateDescent(Strategy):
    """Pattern search with grid refinement (the default strategy)."""

    def __init__(self, shrink: float = 2.0, min_scale: float = 0.05):
        if shrink <= 1:
            raise ValueError("shrink must be > 1")
        self.shrink = shrink
        self.min_scale = min_scale
        self._scale = 1.0

    def _full_point(
        self, space: SearchSpace, trial: Trial
    ) -> Optional[Dict[str, int]]:
        names = {axis.param for axis in space.axes}
        if set(trial.overrides) != names:
            return None  # e.g. the {} reference trial of an off-grid default
        return dict(trial.overrides)

    def propose(
        self, space: SearchSpace, trials: Sequence[Trial]
    ) -> List[Dict[str, int]]:
        seen = {trial.param_id for trial in trials}
        anchored = [
            trial
            for trial in trials
            if trial.ok and self._full_point(space, trial) is not None
        ]
        best = _best_trial(anchored)
        current = (
            self._full_point(space, best) if best else space.defaults()
        )
        while self._scale >= self.min_scale:
            candidates: List[Dict[str, int]] = []
            batch_ids = set()
            for axis in space.axes:
                step = max(1, round(axis.step_ticks * self._scale))
                for delta in (-step, step):
                    point = dict(current)
                    point[axis.param] = axis.clamp(
                        current[axis.param] + delta
                    )
                    identity = param_id(point)
                    if identity in seen or identity in batch_ids:
                        continue
                    batch_ids.add(identity)
                    candidates.append(point)
            if candidates:
                return candidates
            self._scale /= self.shrink
        return []


@dataclass(frozen=True)
class CalibrationReport:
    """Everything one calibration run decided, deterministically.

    The report deliberately contains nothing wall-clock- or
    machine-dependent — trials in evaluation order, losses, and the
    search inputs — so :meth:`to_dict` renders byte-identically for
    serial, pooled, and killed-then-rerun executions of the same
    calibration.  Run-dependent provenance lives in the artifact's
    sidecar manifest (:mod:`repro.calib.artifact`).
    """

    space: SearchSpace
    targets: List[str]
    base_seed: int
    budget: int
    rounds: int
    trials: List[Trial]

    @property
    def best(self) -> Optional[Trial]:
        """The winning trial: most target bands, then lowest loss."""
        return _best_trial(self.trials)

    @property
    def baseline(self) -> Optional[Trial]:
        """The trial that evaluated the shipped defaults."""
        for trial in self.trials:
            if not trial.overrides:
                return trial
            if all(
                trial.overrides.get(axis.param) == axis.default_ticks
                for axis in self.space.axes
            ) and set(trial.overrides) == {
                axis.param for axis in self.space.axes
            }:
                return trial
        return None

    def failures(self) -> List[Trial]:
        return [trial for trial in self.trials if not trial.ok]

    def to_dict(self) -> Dict[str, Any]:
        best = self.best
        baseline = self.baseline
        return {
            "schema": REPORT_SCHEMA,
            "schema_version": REPORT_SCHEMA_VERSION,
            "base_seed": self.base_seed,
            "budget": self.budget,
            "rounds": self.rounds,
            "targets": list(self.targets),
            "search_space": self.space.to_dict(),
            "trials": [trial.to_dict() for trial in self.trials],
            "best": best.param_id if best else None,
            "baseline": baseline.param_id if baseline else None,
        }


def _run_round(
    candidates: Sequence[Mapping[str, int]],
    round_index: int,
    target_names: Sequence[str],
    base_seed: int,
    config: SweepConfig,
) -> List[Outcome]:
    """Execute one candidate batch as a sweep job; outcomes in order."""
    tasks = [
        Task(
            kind="calib",
            task_id=param_id(candidate),
            args={
                "param_id": param_id(candidate),
                "overrides": {
                    name: int(candidate[name]) for name in sorted(candidate)
                },
                "targets": list(target_names),
            },
            index=index,
            base_seed=base_seed,
        )
        for index, candidate in enumerate(candidates)
    ]
    meta = {
        "names": [task.task_id for task in tasks],
        "base_seed": base_seed,
        "targets": list(target_names),
        "round": round_index,
    }
    round_config = config
    if config.run_dir is not None:
        round_dir = os.path.join(config.run_dir, f"round-{round_index:04d}")
        round_config = replace(config, run_dir=round_dir)
        if os.path.exists(os.path.join(round_dir, "job.json")):
            state = RunState.load(round_dir)
            recorded = [task.task_id for task in state.tasks()]
            expected = [task.task_id for task in tasks]
            if recorded != expected:
                raise ValueError(
                    f"{round_dir} belongs to a different calibration: "
                    f"its tasks are {recorded}, this search planned "
                    f"{expected}; point --run-dir at a fresh directory"
                )
            state.recover_stale_claims()
            job = Job.from_state(state, round_config)
        else:
            job = Job(
                kind="calib", meta=meta, tasks=tasks, config=round_config
            )
    else:
        job = Job(kind="calib", meta=meta, tasks=tasks, config=round_config)
    job.run()
    return sorted(job.outcomes(), key=lambda outcome: outcome.index)


def calibrate(
    space: Union[SearchSpace, Mapping[str, Any]],
    *,
    targets: Optional[Sequence[str]] = None,
    budget: int = 16,
    base_seed: int = 0,
    config: Optional[SweepConfig] = None,
    strategy: Optional[Strategy] = None,
) -> CalibrationReport:
    """Fit the whitelisted constants to paper targets; return the report.

    ``space`` is a :class:`SearchSpace` (or its mapping form);
    ``targets`` selects registry targets by name or figure prefix
    (default: the ``fig4`` + ``fig11`` set the shipped constants were
    hand-fit against); ``budget`` caps the total number of evaluated
    trials; ``config`` picks the sweep backend exactly as for
    :func:`repro.api.submit`.  The shipped defaults are always
    evaluated as the reference trial, so the report's ``best`` can
    never pass fewer target bands than the defaults do.

    Use :func:`repro.calib.artifact.write_calibration` (or
    ``api.calibrate(..., out_dir=...)``) to persist the result as a
    calibrated-params artifact.
    """
    if not isinstance(space, SearchSpace):
        space = SearchSpace.from_dict(space)
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    config = config or SweepConfig()
    target_names = select_targets(targets)
    strategy = strategy or CoordinateDescent()

    start = space.defaults()
    first_round: List[Dict[str, int]] = []
    if any(
        start[axis.param] != axis.default_ticks for axis in space.axes
    ):
        # The defaults fall outside the search bounds: evaluate them
        # anyway (as the {} reference trial) so the best-vs-shipped
        # comparison is always against the real defaults.
        first_round.append({})
    first_round.append(start)

    trials: List[Trial] = []
    round_index = 0
    pending: List[Dict[str, int]] = first_round
    while pending and len(trials) < budget:
        batch = pending[: budget - len(trials)]
        outcomes = _run_round(
            batch, round_index, target_names, base_seed, config
        )
        for candidate, outcome in zip(batch, outcomes):
            trials.append(_trial_from_outcome(outcome, candidate, round_index))
        round_index += 1
        if len(trials) >= budget:
            break
        pending = strategy.propose(space, trials)
    return CalibrationReport(
        space=space,
        targets=list(target_names),
        base_seed=base_seed,
        budget=budget,
        rounds=round_index,
        trials=trials,
    )
