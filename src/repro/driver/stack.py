"""The kernel network-stack cost model (Sec. 5.1's caveat).

The paper evaluates latency with bare-metal drivers because "the
overhead of Linux kernel software stack fades the latency improvements
of NetDIMM".  This module makes that statement measurable: a per-layer
cost model for a packet's trip through the kernel TCP/IP stack —
syscall entry, socket lookup, TCP, IP, qdisc on transmit; NAPI-ish
dispatch, IP, TCP, socket wakeup, syscall exit on receive — that any
node model can stack on top of its driver path.

Costs are per-packet constants plus small per-byte terms (checksumming
is offloaded per the paper's footnote, so bytes are cheap), totalling a
few microseconds per direction — consistent with measured kernel-stack
budgets for a warm connection [51].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.units import ns


@dataclass(frozen=True)
class KernelStackParams:
    """Per-layer kernel costs (one direction each)."""

    syscall: int = ns(250)
    """send()/recv() syscall entry + exit pair amortized per packet."""

    socket_tx: int = ns(300)
    """Socket write path: sk buffer queuing, memory accounting."""

    tcp_tx: int = ns(550)
    """TCP transmit: segmentation decision, header build, cong. control."""

    ip_tx: int = ns(250)
    """IP transmit: route cache hit, header, netfilter hooks (empty)."""

    qdisc: int = ns(200)
    """Queueing discipline enqueue/dequeue (pfifo_fast)."""

    napi_rx: int = ns(300)
    """Softirq dispatch + GRO bookkeeping on receive."""

    ip_rx: int = ns(250)
    """IP receive: validation, route lookup, netfilter hooks."""

    tcp_rx: int = ns(600)
    """TCP receive: sequence processing, ACK generation, rcv queue."""

    socket_wakeup: int = ns(350)
    """Waking the blocked reader (futex/scheduler hop)."""

    per_byte_ps: int = 15
    """Residual per-byte cost with checksum offload (header touching,
    skb frag walking): 0.015 ns/B."""


class KernelStackModel:
    """Closed-form kernel-stack overhead for one packet."""

    def __init__(self, params: KernelStackParams = KernelStackParams()):
        self.params = params

    def tx_overhead(self, size_bytes: int) -> int:
        """Extra ticks the kernel adds to the transmit path."""
        fixed = (
            self.params.syscall
            + self.params.socket_tx
            + self.params.tcp_tx
            + self.params.ip_tx
            + self.params.qdisc
        )
        return fixed + size_bytes * self.params.per_byte_ps

    def rx_overhead(self, size_bytes: int) -> int:
        """Extra ticks the kernel adds to the receive path."""
        fixed = (
            self.params.napi_rx
            + self.params.ip_rx
            + self.params.tcp_rx
            + self.params.socket_wakeup
            + self.params.syscall
        )
        return fixed + size_bytes * self.params.per_byte_ps

    def round_trip_overhead(self, size_bytes: int) -> int:
        """Kernel cost of one one-way transfer (TX side + RX side)."""
        return self.tx_overhead(size_bytes) + self.rx_overhead(size_bytes)

    def layer_budget(self, size_bytes: int) -> Dict[str, int]:
        """Per-layer costs for reporting."""
        params = self.params
        return {
            "syscall(x2)": 2 * params.syscall,
            "socket": params.socket_tx + params.socket_wakeup,
            "tcp": params.tcp_tx + params.tcp_rx,
            "ip": params.ip_tx + params.ip_rx,
            "qdisc+napi": params.qdisc + params.napi_rx,
            "per-byte": 2 * size_bytes * params.per_byte_ps,
        }
