"""The discrete PCIe NIC node (dNIC) — Fig. 1 (left), Sec. 2.1.

The baseline everything is compared against: a conventional NIC behind
a PCIe Gen4 x8 link.  Its TX path (paper steps T1–T4) pays PCIe for
the status-register read, the doorbell, the descriptor fetch, and the
payload DMA read; its RX path (R0–R5) pays PCIe for the descriptor
fetch, payload DMA write, and descriptor writeback.  With
``zero_copy=True`` the driver skips the SKB↔DMA-buffer copies and pays
per-packet page-pinning bookkeeping instead (the dNIC.zcpy / iNIC.zcpy
configurations of Fig. 4 and their Sec. 3 caveats).
"""

from __future__ import annotations

from typing import Optional

from repro.cache.ddio import DDIOPartition
from repro.dram.controller import MemoryController
from repro.driver.node import ServerNode, Stopwatch
from repro.mem.allocator import PageAllocator
from repro.mem.zones import MemoryZone, ZoneKind
from repro.net.packet import Packet
from repro.nic.descriptor import Descriptor, DescriptorRing
from repro.nic.registers import PCIeRegisterFile
from repro.params import SystemParams
from repro.pcie.link import PCIeLink
from repro.sim import Future, Simulator
from repro.units import mib


class DiscreteNICNode(ServerNode):
    """One server with a PCIe-attached 40GbE NIC."""

    nic_kind = "dnic"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        params: Optional[SystemParams] = None,
        overrides: Optional[dict] = None,
        zero_copy: bool = False,
        normal_zone_bytes: int = mib(64),
    ):
        super().__init__(sim, name, params=params, overrides=overrides)
        self.zero_copy = zero_copy
        self.host_mc = MemoryController(sim, f"{name}.mc0", self.params.host_dram)
        self.pcie = PCIeLink(sim, f"{name}.pcie", self.params.pcie)
        self.regs = PCIeRegisterFile(sim, f"{name}.regs", self.pcie)
        # Modern PCIe NICs use DDIO too (Sec. 2.1): RX DMA lands in the
        # LLC partition, so the driver's copy-out reads LLC-resident data.
        self.ddio = DDIOPartition(
            llc_bytes=self.params.cache.l2_size,
            way_fraction=self.params.cache.ddio_way_fraction,
        )
        zone = MemoryZone(
            name="ZONE_NORMAL", kind=ZoneKind.NORMAL, base=0, size=normal_zone_bytes
        )
        self.allocator = PageAllocator(zone)
        ring_page = self.allocator.alloc_page()
        self.tx_ring = DescriptorRing(size=256, base_address=ring_page)
        self.rx_ring = DescriptorRing(size=256, base_address=self.allocator.alloc_page())

    @property
    def nic_label(self) -> str:
        """The Fig. 4 configuration label."""
        return "dNIC.zcpy" if self.zero_copy else "dNIC"

    # -- TX path (T1–T3; T4 is the wire) ----------------------------------------

    def _transmit_body(self, packet: Packet, done: Future):
        software = self.params.software
        watch = Stopwatch(self.sim, packet)

        # T1 @driver: transmit function entry + buffer preparation.
        yield software.tx_setup
        packet.app_address = self.allocator.alloc_page()
        dma_buffer = None
        if self.zero_copy:
            # The NIC DMA-reads the pinned application buffer directly.
            yield software.zero_copy_pin_cost
            packet.dma_address = packet.app_address
        else:
            dma_buffer = self.allocator.alloc_page()
            yield self.copy_cost(packet.size_bytes)
            packet.dma_address = dma_buffer
        watch.lap("txCopy")

        # T1/T2 @driver: check NIC state, produce descriptor, ring doorbell.
        yield from self.regs.read("tx_status")
        index = self.tx_ring.produce(packet.dma_address, packet.size_bytes, cookie=packet)
        yield from self.regs.write("tx_tail", index)
        watch.lap("ioreg")

        # T3 @NIC: descriptor fetch + payload DMA read, both over PCIe.
        # The payload is pulled line by line: one full round trip for the
        # first cacheline, then the pipelined per-line costs.
        yield self.params.nic.dma_setup
        yield self.pcie.read(Descriptor.DESCRIPTOR_BYTES)
        yield self.pcie.read(min(packet.size_bytes, 64))
        yield self.pcie.dma_pipeline_extra(packet.size_bytes)
        self.tx_ring.consume()
        watch.lap("txDMA")

        self.allocator.free_page(packet.app_address)
        if dma_buffer is not None:
            self.allocator.free_page(dma_buffer)
        self.stats.count("tx_packets")
        done.set_result(packet)

    # -- RX path (R1–R5; R0 is the wire) ------------------------------------------

    def _receive_body(self, packet: Packet, done: Future):
        software = self.params.software
        nic = self.params.nic
        watch = Stopwatch(self.sim, packet)

        # MAC pipeline, then R1–R3 @NIC: descriptor fetch, payload DMA
        # write, descriptor status writeback — all PCIe transactions.
        yield nic.mac_rx_pipeline
        yield nic.dma_setup
        dma_buffer = self.allocator.alloc_page()
        yield self.pcie.read(Descriptor.DESCRIPTOR_BYTES)
        index = self.rx_ring.produce(dma_buffer, packet.size_bytes, cookie=packet)
        yield self.pcie.posted_write(min(packet.size_bytes, 64), toward_device=False)
        yield self.pcie.dma_pipeline_extra(packet.size_bytes)
        yield self.pcie.posted_write(Descriptor.DESCRIPTOR_BYTES, toward_device=False)
        spilled = self.ddio.inject(dma_buffer, packet.size_bytes)
        if spilled:
            self.stats.count("ddio_spilled_lines", spilled)
            self.host_mc.write(dma_buffer, spilled * 64)
        packet.dma_address = dma_buffer
        watch.lap("rxDMA")

        # R4 @driver: the polling agent (or IRQ) notices the status
        # writeback; the descriptor returns to the NIC (tail update over
        # PCIe).
        yield from self.rx_notification_gate(packet, nic.host_poll_read)
        self.rx_ring.consume()
        yield from self.regs.write("rx_tail", index)
        watch.lap("ioreg")

        # R5 @driver: SKB creation + payload copy to application space.
        # The copy reads DDIO-resident lines at LLC latency.
        yield software.rx_skb_alloc
        missed_lines = self.ddio.consume(dma_buffer, packet.size_bytes)
        app_page = None
        if self.zero_copy:
            yield software.zero_copy_pin_cost
            packet.app_address = packet.dma_address
        else:
            app_page = self.allocator.alloc_page()
            packet.app_address = app_page
            yield self.copy_cost_ddio(packet.size_bytes, missed_lines)
        watch.lap("rxCopy")

        self.allocator.free_page(dma_buffer)
        if app_page is not None:
            self.allocator.free_page(app_page)
        self.stats.count("rx_packets")
        done.set_result(packet)

    # -- analytical helper ---------------------------------------------------------

    def pcie_overhead_estimate(self, size_bytes: int) -> int:
        """The PCIe-protocol share of one packet's TX+RX host latency.

        Counts latency that exists *only because* the NIC sits behind
        PCIe: the register-read round trip, doorbell issue, descriptor
        fetch round trips, per-transaction propagation/completion, and
        TLP header serialization — i.e. what an on-die NIC would not pay.
        Used for the ``pcie.overh`` series of Fig. 4.
        """
        link = self.pcie
        per_read_protocol = (
            link.tlp.header_serialization_ticks()
            + 2 * link.params.propagation
            + link.params.completion_overhead
        )
        overhead = link.mmio_read_latency()  # TX status register read
        overhead += 2 * link.params.doorbell_write_cost  # TX + RX tail writes
        overhead += 2 * per_read_protocol  # TX desc fetch + RX desc fetch
        overhead += per_read_protocol  # TX payload DMA read round trip
        overhead += link.params.propagation  # RX payload delivery traversal
        # TLP segmentation overhead on the payload in both directions.
        payload_overhead_bytes = 2 * (
            link.tlp.wire_bytes(size_bytes) - size_bytes
        )
        overhead += round(payload_overhead_bytes / link.tlp.raw_bytes_per_ps)
        return overhead
