"""The NetDIMM node: driver + device, implementing Alg. 1 (Sec. 4.2.2).

The packet path differs from a PCIe/integrated NIC in four ways:

1. **No PCIe.**  Register accesses and notifications travel the memory
   channel with the NVDIMM-P asynchronous protocol.
2. **Flush/invalidate instead of implicit coherence.**  The host's
   caches and NetDIMM-local DRAM are kept coherent explicitly: TX data
   is flushed to the DIMM (``txFlush``), RX descriptors/buffers are
   invalidated before reading fresh data (``rxInvalidate``).
3. **allocCache + zone affinity.**  DMA buffers come from the
   pre-allocated per-sub-array pool, hinted by the peer buffer's
   address so clones run in RowClone FPM mode.
4. **In-memory cloning instead of CPU copies.**  RX data moves from the
   DMA buffer to the application buffer by ``netdimmClone`` inside the
   DRAM; only the header cacheline ever crosses to the CPU during
   protocol processing, served from nCache.

The first packets of a connection (or zone-exhaustion fallbacks) carry
``COPY_NEEDED`` and take the slow path: a CPU copy into a NetDIMM DMA
buffer, after which the socket learns its zone (``skb_zone``) and later
packets go fast-path.
"""

from __future__ import annotations

from typing import Optional

from repro.core.netdimm import NetDIMMDevice
from repro.dram.controller import MemoryController
from repro.dram.geometry import DRAMGeometry
from repro.dram.nvdimmp import AsyncMemoryPort
from repro.driver.node import ServerNode, Stopwatch
from repro.driver.skb import Socket, allocate_tx_skb
from repro.mem.alloc_cache import AllocCache
from repro.mem.allocator import OutOfMemoryError, PageAllocator
from repro.mem.zones import MemoryZone, ZoneKind
from repro.net.packet import Packet
from repro.nic.descriptor import DescriptorRing
from repro.nic.registers import MemoryChannelRegisterFile
from repro.params import SystemParams
from repro.sim import Future, Simulator
from repro.units import CACHELINE, mib


class NetDIMMNode(ServerNode):
    """One server whose 40GbE NIC lives in a NetDIMM's buffer device."""

    nic_kind = "netdimm"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        params: Optional[SystemParams] = None,
        overrides: Optional[dict] = None,
        normal_zone_bytes: int = mib(64),
        netdimm_index: int = 0,
        use_subarray_hint: bool = True,
        use_alloc_cache: bool = True,
    ):
        super().__init__(sim, name, params=params, overrides=overrides)
        self.netdimm_index = netdimm_index
        self.use_subarray_hint = use_subarray_hint
        """Ablation switch: pass the DMA-buffer hint to allocations (off
        means clones degrade from FPM to PSM/GCM)."""
        self.use_alloc_cache = use_alloc_cache
        """Ablation switch: use the allocCache pool (off means every DMA
        buffer allocation walks the slow page-allocator path)."""
        geometry = DRAMGeometry()
        self.host_mc = MemoryController(sim, f"{name}.mc0", self.params.host_dram)
        net_zone = MemoryZone(
            name=f"NET{netdimm_index}",
            kind=ZoneKind.NET,
            base=normal_zone_bytes,
            size=geometry.capacity_bytes,
            netdimm_index=netdimm_index,
        )
        self.net_zone = net_zone
        self.device = NetDIMMDevice(
            sim, f"{name}.netdimm", self.params, geometry, zone_base=net_zone.base
        )
        self.port = AsyncMemoryPort(
            sim,
            f"{name}.port",
            self.device,
            timing=self.params.netdimm_dram,
            protocol=self.params.nvdimmp,
        )
        self.regs = MemoryChannelRegisterFile(
            sim,
            f"{name}.regs",
            timing=self.params.netdimm_dram,
            protocol=self.params.nvdimmp,
            ncontroller_latency=self.params.netdimm.ncontroller_latency,
        )
        self.allocator = PageAllocator(net_zone, geometry)
        self.alloc_cache = AllocCache(
            sim,
            f"{name}.alloccache",
            self.allocator,
            refill_latency=self.params.software.alloc_pages_slow,
        )
        # Descriptor rings live on the NetDIMM zone (Sec. 4.2.2:
        # "__alloc_netdimm_pages(zone_i, -1) to allocate descriptor ring
        # data structures").
        self.tx_ring = DescriptorRing(size=256, base_address=self.allocator.alloc_page())
        self.rx_ring = DescriptorRing(size=256, base_address=self.allocator.alloc_page())

    @property
    def nic_label(self) -> str:
        """The Fig. 11 configuration label."""
        return "NetDIMM"

    # -- allocation helpers (honoring the ablation switches) ----------------------

    def _alloc_dma_page(self, hint: Optional[int]):
        """Allocate a DMA page; returns ``(address, fast)``."""
        if not self.use_subarray_hint:
            hint = None
        if self.use_alloc_cache:
            return self.alloc_cache.get(hint=hint)
        return self.allocator.alloc_page(hint=hint), False

    def _release_dma_page(self, address: int) -> None:
        if self.use_alloc_cache:
            self.alloc_cache.put(address)
        else:
            self.allocator.free_page(address)

    # -- TX path (Alg. 1 lines 1–10) -----------------------------------------------

    def _transmit_body(self, packet: Packet, done: Future):
        software = self.params.software
        watch = Stopwatch(self.sim, packet)
        socket = self._socket_for(packet)

        yield software.tx_setup
        skb = allocate_tx_skb(socket, packet.size_bytes)
        dma_page = None
        take_slow_path = skb.copy_needed
        if not take_slow_path:
            # Fast path: the SKB data lives on the NetDIMM zone and is
            # transmitted in place (line 8) — unless the zone is
            # exhausted, in which case COPY_NEEDED doubles as the
            # fallback (Sec. 4.2.2: "COPY_NEEDED flag is also used as a
            # fallback mechanism in case the memory space on a NETi zone
            # is exhausted").
            try:
                skb.data_address = self.allocator.alloc_page()
            except OutOfMemoryError:
                take_slow_path = True
                skb.copy_needed = True
                skb.zone_name = "ZONE_NORMAL"
                self.stats.count("tx_zone_exhausted_fallback")
        if take_slow_path:
            # Slow path: SKB data is off-zone; allocate a NetDIMM DMA
            # buffer (Alg. 1 line 2) and copy into it (line 4), then
            # teach the socket its zone (line 5).
            dma_page, fast = self._alloc_dma_page(hint=None)
            yield software.alloc_cache_hit if fast else software.alloc_pages_slow
            yield self.copy_cost(packet.size_bytes)
            socket.skb_zone = self.net_zone.name
            packet.dma_address = dma_page
            self.stats.count("tx_slow_path")
        else:
            packet.dma_address = skb.data_address
            self.stats.count("tx_fast_path")
        packet.copy_needed = skb.copy_needed
        packet.app_address = skb.data_address or packet.dma_address
        watch.lap("txCopy")

        # Flush the packet data out of the CPU caches to the DIMM
        # (lines 6/8): CPU flush cost + the dirty lines crossing the
        # host memory channel into NetDIMM-local DRAM.
        yield self.flush_cost(packet.size_bytes)
        yield self.port.write(packet.dma_address, packet.size_bytes)
        watch.lap("txFlush")

        # Lines 9–10: fill size+flags in the descriptor and flush that
        # one line — the flush doubles as the doorbell.
        index = self.tx_ring.produce(packet.dma_address, packet.size_bytes, cookie=packet)
        desc_address = self.tx_ring.descriptor_address(index)
        yield self.flush_cost(CACHELINE)
        yield self.port.write(desc_address, CACHELINE)
        watch.lap("ioreg")

        # nController DMA: descriptor fetch + payload read, all on-DIMM.
        yield self.device.nic_transmit_dma(packet.dma_address, packet.size_bytes, desc_address)
        self.tx_ring.consume()
        watch.lap("txDMA")

        if dma_page is not None:
            self._release_dma_page(dma_page)
        else:
            self.allocator.free_page(skb.data_address)
        socket.packets_sent += 1
        self.stats.count("tx_packets")
        done.set_result(packet)

    # -- RX path (Alg. 1 lines 11–15) --------------------------------------------------

    def _receive_body(self, packet: Packet, done: Future):
        software = self.params.software
        netdimm = self.params.netdimm
        watch = Stopwatch(self.sim, packet)

        # The RX DMA buffer was pre-posted in the ring from the
        # allocCache (refilled off the critical path).
        dma_buffer, _fast = self._alloc_dma_page(hint=None)
        index = self.rx_ring.produce(dma_buffer, packet.size_bytes, cookie=packet)
        desc_address = self.rx_ring.descriptor_address(index)

        # nNIC MAC + nController deposit into local DRAM (R1–R3),
        # header cacheline mirrored into nCache.
        yield self.params.nic.mac_rx_pipeline
        yield self.device.nic_receive_dma(dma_buffer, packet.size_bytes, desc_address)
        packet.dma_address = dma_buffer
        watch.lap("rxDMA")

        # Polling agent: an asynchronous read of the descriptor status —
        # much cheaper than a PCIe register read — plus loop overhead.
        # (In interrupt mode the moderation/delivery delay replaces the
        # poll; the descriptor read still happens inside the handler.)
        notify_start = self.now
        if software.rx_notification == "interrupt":
            yield software.interrupt_moderation // 2 + software.interrupt_overhead
        else:
            yield software.poll_iteration // 2
        tracer = self.sim.tracer if packet.uid is not None else None
        if tracer is not None:
            tracer.add(packet.uid, "rxNotify", "notify", notify_start, self.now)
        yield self.port.read(desc_address, CACHELINE)
        watch.lap("ioreg")

        # Alg. 1 line 12: invalidate the descriptor line so the CPU
        # fetches fresh data from NetDIMM.  (SKB payload lines are
        # invalidated lazily, on the application's demand.)
        yield self.invalidate_cost(CACHELINE)
        watch.lap("rxInvalidate")

        # Lines 13–15: allocate the SKB data page *on the same
        # sub-array* as the DMA buffer, clone in memory, then the stack
        # reads the header (an nCache hit).
        yield software.rx_skb_alloc
        app_page, fast = self._alloc_dma_page(hint=dma_buffer)
        yield software.alloc_cache_hit if fast else software.alloc_pages_slow
        packet.app_address = app_page
        mode = self.device.clone_mode(app_page, dma_buffer)
        self.stats.count(f"rx_clone_{mode.value}")
        clone_start = self.now
        yield netdimm.clone_register_write
        yield self.device.clone(app_page, dma_buffer, packet.size_bytes)
        if tracer is not None:
            # The in-memory buffer clone (RowClone FPM/PSM/GCM) as a
            # child span inside the rxCopy segment.
            tracer.add(
                packet.uid, "clone", "device", clone_start, self.now,
                {"mode": mode.value},
            )
        yield self.port.read(app_page, CACHELINE)
        watch.lap("rxCopy")

        self.rx_ring.consume()
        self._release_dma_page(dma_buffer)
        self._release_dma_page(app_page)
        self.stats.count("rx_packets")
        done.set_result(packet)

    # -- helpers --------------------------------------------------------------------

    _default_socket: Optional[Socket] = None

    def _socket_for(self, packet: Packet) -> Socket:
        """The socket serving a packet's flow.

        Latency experiments reuse one long-lived connection per node (the
        paper measures steady-state flows); callers needing per-flow
        sockets can attach their own via ``packet.flow_id`` bookkeeping.
        """
        if self._default_socket is None:
            self._default_socket = Socket()
        return self._default_socket

    def warm_up(self) -> None:
        """Mark the default connection established (skip COPY_NEEDED).

        Equivalent to having already sent the connection-establishment
        packets, after which ``skb_zone`` is set and transmissions take
        the fast path.
        """
        socket = self._socket_for(Packet(size_bytes=1))
        socket.skb_zone = self.net_zone.name
