"""Driver / software-stack models.

The paper evaluates latency with bare-metal drivers that "resemble
low-latency userspace drivers" (Sec. 5.1).  This package models those
drivers as simulation processes that issue the same sequence of
operations a real driver would — copies, flushes, register accesses,
descriptor production, DMA kicks, poll reads — against the hardware
models, charging each operation to its Fig. 11 breakdown segment.

* :mod:`repro.driver.skb` — socket buffers, sockets, and the
  COPY_NEEDED / skb_zone mechanics of Sec. 4.2.2.
* :mod:`repro.driver.polling` — the polling agent.
* :mod:`repro.driver.node` — the abstract server-node interface.
* :mod:`repro.driver.dnic_node` — discrete PCIe NIC (dNIC), with
  optional zero-copy.
* :mod:`repro.driver.inic_node` — CPU-integrated NIC (iNIC) with DDIO,
  with optional zero-copy.
* :mod:`repro.driver.netdimm_node` — the NetDIMM driver (Alg. 1).
"""

from repro.driver.dnic_node import DiscreteNICNode
from repro.driver.inic_node import IntegratedNICNode
from repro.driver.netdimm_node import NetDIMMNode
from repro.driver.node import ServerNode
from repro.driver.polling import PollingAgent
from repro.driver.registry import NIC_KINDS, NIC_REGISTRY, make_node
from repro.driver.skb import SKB, Socket

__all__ = [
    "DiscreteNICNode",
    "IntegratedNICNode",
    "NIC_KINDS",
    "NIC_REGISTRY",
    "NetDIMMNode",
    "PollingAgent",
    "ServerNode",
    "SKB",
    "Socket",
    "make_node",
]
