"""The polling agent (Sec. 2.1 / Alg. 1 lines 16–19).

Ultra-low-latency deployments poll instead of taking interrupts:
interrupt handling and moderation can delay packet processing by
microseconds.  The polling agent spins on the RX descriptor ring's
status word; the cost of each probe depends on where that word lives —
host memory for a dNIC/iNIC (the NIC DMA-writes status into the ring),
or a NetDIMM asynchronous read ("polling NetDIMM is more efficient than
polling a PCIe NIC as accessing I/O registers on a NetDIMM is much
faster").

Two uses:

* :func:`detection_cost` — the closed-form expected latency between a
  packet's status landing and the driver noticing it (used by the
  latency experiments, which charge it to the ``ioreg`` segment).
* :class:`PollingAgent` — a live polling process for the streaming /
  bandwidth experiments, dispatching an RX callback per detected
  packet.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim import Component, Future, Queue, Simulator


def detection_cost(probe_cost: int, loop_cost: int) -> int:
    """Expected poll-detection latency.

    A packet's completion lands uniformly within the poll period
    ``probe_cost + loop_cost``; on average the driver burns half a
    period before the probe that sees it, plus that probe itself.
    """
    period = probe_cost + loop_cost
    return period // 2 + probe_cost


class PollingAgent(Component):
    """A live polling loop: probe, dispatch, repeat.

    ``probe`` is a generator function performing one timed status read
    and returning the number of packets now ready; ``dispatch`` is
    called once per ready packet.  The agent also drains completed TX
    buffers via ``reap_tx`` when provided (Alg. 1 line 17).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        probe: Callable[[], object],
        dispatch: Callable[[], object],
        loop_cost: int,
        reap_tx: Optional[Callable[[], None]] = None,
    ):
        super().__init__(sim, name)
        self.probe = probe
        self.dispatch = dispatch
        self.loop_cost = loop_cost
        self.reap_tx = reap_tx
        self._running = False
        self._stop_requested = False

    @property
    def running(self) -> bool:
        """Whether the loop is active."""
        return self._running

    def start(self) -> None:
        """Begin polling (idempotent)."""
        if self._running:
            return
        self._running = True
        self._stop_requested = False
        self.sim.spawn(self._loop(), name=f"{self.name}.loop")

    def stop(self) -> None:
        """Request the loop to exit after the current iteration."""
        self._stop_requested = True

    def _loop(self):
        while not self._stop_requested:
            if self.reap_tx is not None:
                self.reap_tx()
            ready = yield from self.probe()
            self.stats.count("probes")
            for _ in range(ready):
                self.stats.count("dispatched")
                yield from self.dispatch()
            yield self.loop_cost
        self._running = False
