"""Socket buffers and the NetDIMM zone-affinity mechanics (Sec. 4.2.2).

A connection's first SKBs are allocated from regular kernel memory
(connection establishment happens before the driver knows which
NetDIMM serves the flow), so they carry the ``COPY_NEEDED`` flag and
take the slow TX path: copy into a NetDIMM DMA buffer first.  The
NetDIMM driver then records the serving zone in the socket
(``struct sock``'s new ``skb_zone`` field); every later SKB of the flow
is allocated directly in that NET zone and transmits on the fast
(copy-free, flush-only) path.

``COPY_NEEDED`` doubles as the fallback when a NET zone is exhausted.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_socket_ids = itertools.count(1)


@dataclass
class Socket:
    """The slice of ``struct sock`` the NetDIMM driver cares about."""

    socket_id: int = field(default_factory=lambda: next(_socket_ids))
    skb_zone: Optional[str] = None
    """NET zone name serving this connection; None until the first
    transmission teaches the socket where its NetDIMM is."""

    packets_sent: int = 0
    packets_received: int = 0

    @property
    def established_on_netdimm(self) -> bool:
        """Whether the fast path is available for this connection."""
        return self.skb_zone is not None


@dataclass
class SKB:
    """A socket buffer: metadata for one packet's kernel journey."""

    size_bytes: int
    data_address: int = 0
    zone_name: str = "ZONE_NORMAL"
    copy_needed: bool = False
    socket: Optional[Socket] = None

    def __post_init__(self):
        if self.size_bytes <= 0:
            raise ValueError(f"SKB must have positive size: {self.size_bytes}")


def allocate_tx_skb(socket: Socket, size_bytes: int, zone_hint_address: int = 0) -> SKB:
    """Allocate a TX SKB honoring the socket's learned zone.

    Before the first transmission, SKBs come from ZONE_NORMAL with
    COPY_NEEDED set; afterwards they come from the socket's NET zone and
    transmit copy-free.
    """
    if socket.established_on_netdimm:
        return SKB(
            size_bytes=size_bytes,
            data_address=zone_hint_address,
            zone_name=socket.skb_zone,
            copy_needed=False,
            socket=socket,
        )
    return SKB(
        size_bytes=size_bytes,
        data_address=zone_hint_address,
        zone_name="ZONE_NORMAL",
        copy_needed=True,
        socket=socket,
    )
