"""The abstract server-node interface shared by all NIC configurations.

A node owns one server's hardware models (memory controllers, the NIC
and its interconnect, descriptor rings) and exposes two process-style
operations:

* :meth:`ServerNode.transmit` — everything from the driver's transmit
  function being called to the packet being handed to the MAC for
  serialization (segments ``txCopy``/``txFlush``/``ioreg``/``txDMA``).
* :meth:`ServerNode.receive` — everything from the frame having fully
  arrived at the MAC to the packet being delivered to the upper network
  layers (segments ``rxDMA``/``ioreg``/``rxInvalidate``/``rxCopy``).

Both charge their time into ``packet.breakdown`` so experiments can
reproduce the stacked bars of Fig. 11.  The ``wire`` segment between
the two is owned by the link/fabric models.

A small :class:`Stopwatch` helper keeps segment charging honest: the
elapsed simulated time between laps is charged, so queueing delays
inside the hardware models land in the right segment automatically.

The node also owns the driver's loss-recovery loop
(:meth:`ServerNode.send_reliably`): a retransmission timer armed per
attempt, exponential backoff between timeouts, and a retransmit budget
whose exhaustion surfaces the packet as lost instead of hanging the
simulation.  When the scenario injects no faults none of it is
entered, so the zero-fault event sequence is untouched.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.driver.polling import detection_cost
from repro.faults.engine import stall_delay
from repro.faults.spec import RecoverySpec
from repro.net.packet import Packet
from repro.params import SystemParams, apply_overrides
from repro.sim import Component, Future, Simulator
from repro.units import cachelines, ns


def _complete_timeout(verdict: Future) -> None:
    """Retransmission timer callback: report a timeout, unless the
    delivery already won the race at this exact tick."""
    if not verdict.done:
        verdict.set_result("timeout")


class FlowRecovery:
    """Recovery counters for one flow group (mutated by
    :meth:`ServerNode.send_reliably`, reported in the scenario artifact).
    """

    __slots__ = ("delivered", "lost", "drops", "retransmits", "timeouts")

    def __init__(self):
        self.delivered = 0
        self.lost = 0
        self.drops = 0
        self.retransmits = 0
        self.timeouts = 0

    def as_dict(self) -> dict:
        """JSON-safe rendering, fixed key order."""
        return {
            "delivered": self.delivered,
            "lost": self.lost,
            "drops": self.drops,
            "retransmits": self.retransmits,
            "timeouts": self.timeouts,
        }


class Stopwatch:
    """Charges wall-clock (simulated) time between laps to segments.

    When the simulator carries a span tracer and the packet has a flow
    ``uid``, every lap also closes a ``segment`` span over the same
    interval — one instrumentation point covering the breakdown
    segments of all five NIC kinds.  Recording only reads timestamps,
    so the event stream is identical with tracing on or off.
    """

    __slots__ = ("sim", "packet", "_mark", "_tracer")

    def __init__(self, sim: Simulator, packet: Packet):
        self.sim = sim
        self.packet = packet
        self._mark = sim.now
        tracer = sim.tracer
        self._tracer = tracer if packet.uid is not None else None

    def lap(self, segment: str) -> int:
        """Charge time since the last lap to ``segment``; returns it."""
        now = self.sim.now
        elapsed = now - self._mark
        self.packet.breakdown.add(segment, elapsed)
        if self._tracer is not None:
            self._tracer.add(self.packet.uid, segment, "segment", self._mark, now)
        self._mark = now
        return elapsed


class ServerNode(Component):
    """Base class for dNIC / iNIC / NetDIMM end hosts."""

    nic_kind = "abstract"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        params: Optional[SystemParams] = None,
        overrides: Optional[dict] = None,
    ):
        super().__init__(sim, name)
        base = params if params is not None else SystemParams()
        self.params = apply_overrides(base, overrides) if overrides else base
        self.fault_stalls: Tuple[Tuple[int, int], ...] = ()
        """Stall windows as (start, end) ticks — set by the scenario
        builder from the fault spec; empty means no gating at all."""

    # -- the two path processes (subclasses implement the bodies) -------------

    def transmit(self, packet: Packet) -> Future:
        """Run the TX path; future completes when the MAC takes the frame."""
        done = self.sim.future()
        body = self._transmit_body(packet, done)
        if self.fault_stalls:
            body = self._stall_gate(body)
        sim = self.sim
        sim.spawn(body, name=f"{self.name}.tx" if sim.named else "")
        return done

    def receive(self, packet: Packet) -> Future:
        """Run the RX path; future completes at delivery to upper layers."""
        done = self.sim.future()
        body = self._receive_body(packet, done)
        if self.fault_stalls:
            body = self._stall_gate(body)
        sim = self.sim
        sim.spawn(body, name=f"{self.name}.rx" if sim.named else "")
        return done

    def _stall_gate(self, body):
        """Delay ``body`` until the current stall window (if any) ends."""
        delay = stall_delay(self.fault_stalls, self.now)
        if delay:
            self.stats.count("stall_waits")
            yield delay
        yield from body

    # -- driver-level loss recovery -------------------------------------------

    def send_reliably(
        self,
        packet: Packet,
        transit: Callable[[Packet], "object"],
        receiver: "ServerNode",
        recovery: RecoverySpec,
        counters: FlowRecovery,
    ):
        """One packet's reliable delivery loop (``yield from`` this).

        Each attempt runs TX → fabric transit → RX with a cancellable
        retransmission timer racing it; a dropped attempt simply never
        completes and the timer fires.  Timeouts retransmit with
        exponential backoff until the budget is exhausted, at which
        point the packet is abandoned as lost.  Returns True when the
        packet was delivered, False when it was lost.

        ``transit`` is called per attempt and must return a fresh
        transit generator that itself returns True/False (the fabric
        ``transit`` protocol).
        """
        timeout = int(ns(recovery.timeout_ns))
        tracer = self.sim.tracer if packet.uid is not None else None
        while True:
            attempt_start = self.now
            verdict = self.sim.future()
            timer = self.sim.call_later(timeout, _complete_timeout, verdict)
            self.sim.spawn(
                self._attempt_body(packet, transit, receiver, verdict, timer, counters),
                name=f"{self.name}.attempt",
            )
            outcome = yield verdict
            if tracer is not None:
                # Child span per attempt: nested inside the flow span,
                # containing that attempt's segment/wire/switch spans.
                tracer.add(
                    packet.uid,
                    f"attempt {packet.attempt}",
                    "recovery",
                    attempt_start,
                    self.now,
                    {"outcome": outcome},
                )
            if outcome == "delivered":
                counters.delivered += 1
                return True
            counters.timeouts += 1
            if packet.attempt >= recovery.max_retransmits:
                counters.lost += 1
                return False
            packet.attempt += 1
            counters.retransmits += 1
            if tracer is not None:
                tracer.counter(
                    f"{self.name}.retransmits", self.now, counters.retransmits
                )
            timeout = int(timeout * recovery.backoff)

    def _attempt_body(
        self,
        packet: Packet,
        transit: Callable[[Packet], "object"],
        receiver: "ServerNode",
        verdict: Future,
        timer,
        counters: FlowRecovery,
    ):
        yield self.transmit(packet)
        arrived = yield from transit(packet)
        if not arrived:
            # The frame vanished mid-fabric: nobody tells the sender —
            # the retransmission timer is the only way it finds out.
            counters.drops += 1
            return
        yield receiver.receive(packet)
        if not verdict.done:
            timer.cancel()
            verdict.set_result("delivered")

    def _transmit_body(self, packet: Packet, done: Future):
        raise NotImplementedError
        yield  # pragma: no cover

    def _receive_body(self, packet: Packet, done: Future):
        raise NotImplementedError
        yield  # pragma: no cover

    # -- shared software-cost helpers -------------------------------------------

    def rx_notification_delay(self, probe_cost: int) -> int:
        """Ticks between an RX completion landing and the driver acting.

        Polling mode: the expected poll-detection latency for this
        node's probe cost.  Interrupt mode: half the moderation window
        plus delivery/handler/context-switch overhead (Sec. 2.1's
        several-microsecond penalty).

        The mode string is validated once in ``SoftwareParams`` — this
        runs per received packet and only dispatches.
        """
        software = self.params.software
        if software.rx_notification == "interrupt":
            return software.interrupt_moderation // 2 + software.interrupt_overhead
        return detection_cost(probe_cost, software.poll_iteration)

    def rx_notification_gate(self, packet: Packet, probe_cost: int):
        """Wait out :meth:`rx_notification_delay` (``yield from`` this).

        Span-traced form of ``yield self.rx_notification_delay(...)``:
        the same single sleep event, plus — when a tracer is attached
        and the packet is a measured one — an ``rxNotify`` child span
        inside the enclosing ``ioreg`` segment.
        """
        start = self.now
        yield self.rx_notification_delay(probe_cost)
        tracer = self.sim.tracer
        if tracer is not None and packet.uid is not None:
            tracer.add(packet.uid, "rxNotify", "notify", start, self.now)

    def copy_cost(self, size_bytes: int) -> int:
        """CPU memcpy cost for ``size_bytes``.

        Latency-bound per line for the first lines of a buffer, then
        prefetcher-streaming rate: small copies pay ~25 ns per line,
        large copies approach 4.5 GB/s.
        """
        software = self.params.software
        lines = cachelines(max(size_bytes, 1))
        initial = min(lines, software.copy_line_breakpoint)
        steady = lines - initial
        return (
            software.copy_base
            + initial * software.copy_line_initial
            + steady * software.copy_line_steady
        )

    def copy_cost_ddio(self, size_bytes: int, missed_lines: int) -> int:
        """RX-copy cost when the source sat in the LLC via DDIO.

        LLC-resident lines copy at LLC latency; lines the DDIO partition
        already spilled (DMA leakage) pay the DRAM-bound rates.
        """
        software = self.params.software
        lines = cachelines(max(size_bytes, 1))
        missed = max(0, min(missed_lines, lines))
        resident = lines - missed
        initial = min(missed, software.copy_line_breakpoint)
        steady = missed - initial
        return (
            software.copy_base
            + resident * software.copy_line_llc
            + initial * software.copy_line_initial
            + steady * software.copy_line_steady
        )

    def flush_cost(self, size_bytes: int) -> int:
        """CPU cost of flushing ``size_bytes`` of dirty cachelines."""
        software = self.params.software
        return software.flush_base + cachelines(size_bytes) * software.flush_per_line

    def invalidate_cost(self, size_bytes: int) -> int:
        """CPU cost of invalidating ``size_bytes`` of cachelines."""
        software = self.params.software
        return software.invalidate_base + cachelines(size_bytes) * software.invalidate_per_line
