"""The abstract server-node interface shared by all NIC configurations.

A node owns one server's hardware models (memory controllers, the NIC
and its interconnect, descriptor rings) and exposes two process-style
operations:

* :meth:`ServerNode.transmit` — everything from the driver's transmit
  function being called to the packet being handed to the MAC for
  serialization (segments ``txCopy``/``txFlush``/``ioreg``/``txDMA``).
* :meth:`ServerNode.receive` — everything from the frame having fully
  arrived at the MAC to the packet being delivered to the upper network
  layers (segments ``rxDMA``/``ioreg``/``rxInvalidate``/``rxCopy``).

Both charge their time into ``packet.breakdown`` so experiments can
reproduce the stacked bars of Fig. 11.  The ``wire`` segment between
the two is owned by the link/fabric models.

A small :class:`Stopwatch` helper keeps segment charging honest: the
elapsed simulated time between laps is charged, so queueing delays
inside the hardware models land in the right segment automatically.
"""

from __future__ import annotations

from typing import Optional

from repro.driver.polling import detection_cost
from repro.net.packet import Packet
from repro.params import SystemParams
from repro.sim import Component, Future, Simulator
from repro.units import cachelines


class Stopwatch:
    """Charges wall-clock (simulated) time between laps to segments."""

    __slots__ = ("sim", "packet", "_mark")

    def __init__(self, sim: Simulator, packet: Packet):
        self.sim = sim
        self.packet = packet
        self._mark = sim.now

    def lap(self, segment: str) -> int:
        """Charge time since the last lap to ``segment``; returns it."""
        elapsed = self.sim.now - self._mark
        self.packet.breakdown.add(segment, elapsed)
        self._mark = self.sim.now
        return elapsed


class ServerNode(Component):
    """Base class for dNIC / iNIC / NetDIMM end hosts."""

    nic_kind = "abstract"

    def __init__(self, sim: Simulator, name: str, params: Optional[SystemParams] = None):
        super().__init__(sim, name)
        self.params = params or SystemParams()

    # -- the two path processes (subclasses implement the bodies) -------------

    def transmit(self, packet: Packet) -> Future:
        """Run the TX path; future completes when the MAC takes the frame."""
        done = self.sim.future()
        self.sim.spawn(self._transmit_body(packet, done), name=f"{self.name}.tx")
        return done

    def receive(self, packet: Packet) -> Future:
        """Run the RX path; future completes at delivery to upper layers."""
        done = self.sim.future()
        self.sim.spawn(self._receive_body(packet, done), name=f"{self.name}.rx")
        return done

    def _transmit_body(self, packet: Packet, done: Future):
        raise NotImplementedError
        yield  # pragma: no cover

    def _receive_body(self, packet: Packet, done: Future):
        raise NotImplementedError
        yield  # pragma: no cover

    # -- shared software-cost helpers -------------------------------------------

    def rx_notification_delay(self, probe_cost: int) -> int:
        """Ticks between an RX completion landing and the driver acting.

        Polling mode: the expected poll-detection latency for this
        node's probe cost.  Interrupt mode: half the moderation window
        plus delivery/handler/context-switch overhead (Sec. 2.1's
        several-microsecond penalty).

        The mode string is validated once in ``SoftwareParams`` — this
        runs per received packet and only dispatches.
        """
        software = self.params.software
        if software.rx_notification == "interrupt":
            return software.interrupt_moderation // 2 + software.interrupt_overhead
        return detection_cost(probe_cost, software.poll_iteration)

    def copy_cost(self, size_bytes: int) -> int:
        """CPU memcpy cost for ``size_bytes``.

        Latency-bound per line for the first lines of a buffer, then
        prefetcher-streaming rate: small copies pay ~25 ns per line,
        large copies approach 4.5 GB/s.
        """
        software = self.params.software
        lines = cachelines(max(size_bytes, 1))
        initial = min(lines, software.copy_line_breakpoint)
        steady = lines - initial
        return (
            software.copy_base
            + initial * software.copy_line_initial
            + steady * software.copy_line_steady
        )

    def copy_cost_ddio(self, size_bytes: int, missed_lines: int) -> int:
        """RX-copy cost when the source sat in the LLC via DDIO.

        LLC-resident lines copy at LLC latency; lines the DDIO partition
        already spilled (DMA leakage) pay the DRAM-bound rates.
        """
        software = self.params.software
        lines = cachelines(max(size_bytes, 1))
        missed = max(0, min(missed_lines, lines))
        resident = lines - missed
        initial = min(missed, software.copy_line_breakpoint)
        steady = missed - initial
        return (
            software.copy_base
            + resident * software.copy_line_llc
            + initial * software.copy_line_initial
            + steady * software.copy_line_steady
        )

    def flush_cost(self, size_bytes: int) -> int:
        """CPU cost of flushing ``size_bytes`` of dirty cachelines."""
        software = self.params.software
        return software.flush_base + cachelines(size_bytes) * software.flush_per_line

    def invalidate_cost(self, size_bytes: int) -> int:
        """CPU cost of invalidating ``size_bytes`` of cachelines."""
        software = self.params.software
        return software.invalidate_base + cachelines(size_bytes) * software.invalidate_per_line
