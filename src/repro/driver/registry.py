"""The single NIC-kind registry.

One name → constructor mapping for the five evaluated configurations
(Sec. 5.1): discrete PCIe NIC and integrated NIC, each with and without
zero-copy, plus NetDIMM.  The experiment layer, the CLI, and the
scenario builder all resolve NIC kinds here, so adding a configuration
is a one-line change.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.driver.dnic_node import DiscreteNICNode
from repro.driver.inic_node import IntegratedNICNode
from repro.driver.netdimm_node import NetDIMMNode
from repro.driver.node import ServerNode
from repro.params import DEFAULT, SystemParams
from repro.sim import Simulator

NodeFactory = Callable[[Simulator, str, SystemParams], ServerNode]

NIC_REGISTRY: Dict[str, NodeFactory] = {
    "dnic": lambda sim, name, params: DiscreteNICNode(
        sim, name, params=params, zero_copy=False
    ),
    "dnic.zcpy": lambda sim, name, params: DiscreteNICNode(
        sim, name, params=params, zero_copy=True
    ),
    "inic": lambda sim, name, params: IntegratedNICNode(
        sim, name, params=params, zero_copy=False
    ),
    "inic.zcpy": lambda sim, name, params: IntegratedNICNode(
        sim, name, params=params, zero_copy=True
    ),
    "netdimm": lambda sim, name, params: NetDIMMNode(sim, name, params=params),
}

NIC_KINDS = tuple(NIC_REGISTRY)
"""Registered configuration names, in registration order."""


def make_node(
    sim: Simulator,
    name: str,
    nic_kind: str,
    params: Optional[SystemParams] = None,
) -> ServerNode:
    """Instantiate a server node for one of the registered configurations."""
    factory = NIC_REGISTRY.get(nic_kind)
    if factory is None:
        raise ValueError(
            f"unknown NIC kind: {nic_kind!r} (expected one of {NIC_KINDS})"
        )
    return factory(sim, name, params or DEFAULT)
