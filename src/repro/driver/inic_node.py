"""The CPU-integrated NIC node (iNIC) — Fig. 1 (middle), Sec. 3.

The NIC sits on the processor die: register accesses cost tens of
cycles instead of PCIe round trips, and DMA moves data between the NIC
and the LLC over on-die fabric.  RX packets land in the DDIO partition
of the LLC (so they do not consume host memory-channel bandwidth —
Sec. 5.3), but at high rates they thrash that partition and spill
(DMA leakage), and full-payload processing pollutes the rest of the
LLC — the L3 limitation that motivates NetDIMM's header split.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.ddio import DDIOPartition
from repro.dram.controller import MemoryController
from repro.driver.node import ServerNode, Stopwatch
from repro.mem.allocator import PageAllocator
from repro.mem.zones import MemoryZone, ZoneKind
from repro.net.packet import Packet
from repro.nic.descriptor import Descriptor, DescriptorRing
from repro.nic.registers import OnDieRegisterFile
from repro.params import SystemParams
from repro.sim import Future, Simulator
from repro.units import mib, transfer_time


class IntegratedNICNode(ServerNode):
    """One server with an on-die 40GbE NIC using DDIO."""

    nic_kind = "inic"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        params: Optional[SystemParams] = None,
        overrides: Optional[dict] = None,
        zero_copy: bool = False,
        normal_zone_bytes: int = mib(64),
    ):
        super().__init__(sim, name, params=params, overrides=overrides)
        self.zero_copy = zero_copy
        self.host_mc = MemoryController(sim, f"{name}.mc0", self.params.host_dram)
        self.regs = OnDieRegisterFile(
            sim, f"{name}.regs", access_latency=self.params.nic.inic_register_latency
        )
        self.ddio = DDIOPartition(
            llc_bytes=self.params.cache.l2_size,
            way_fraction=self.params.cache.ddio_way_fraction,
        )
        zone = MemoryZone(
            name="ZONE_NORMAL", kind=ZoneKind.NORMAL, base=0, size=normal_zone_bytes
        )
        self.allocator = PageAllocator(zone)
        self.tx_ring = DescriptorRing(size=256, base_address=self.allocator.alloc_page())
        self.rx_ring = DescriptorRing(size=256, base_address=self.allocator.alloc_page())

    @property
    def nic_label(self) -> str:
        """The Fig. 4 configuration label."""
        return "iNIC.zcpy" if self.zero_copy else "iNIC"

    def _llc_transfer(self, size_bytes: int) -> int:
        """On-die movement time between the NIC and the LLC."""
        return transfer_time(size_bytes, self.params.nic.llc_bytes_per_ps)

    def _fabric_dma(self, size_bytes: int) -> int:
        """Coherent-fabric DMA time: snoop + slice hop per line, pipelined.

        The first lines pay full fabric latency; once the stream is
        primed, lines flow at the on-die steady rate.
        """
        nic = self.params.nic
        lines = max(1, -(-size_bytes // 64))
        initial = min(lines, nic.inic_line_breakpoint)
        steady = lines - initial
        return initial * nic.inic_line_cost + steady * nic.inic_line_cost_steady

    # -- TX path ------------------------------------------------------------------

    def _transmit_body(self, packet: Packet, done: Future):
        software = self.params.software
        watch = Stopwatch(self.sim, packet)

        yield software.tx_setup
        packet.app_address = self.allocator.alloc_page()
        dma_buffer = None
        if self.zero_copy:
            yield software.zero_copy_pin_cost
            packet.dma_address = packet.app_address
        else:
            dma_buffer = self.allocator.alloc_page()
            yield self.copy_cost(packet.size_bytes)
            packet.dma_address = dma_buffer
        watch.lap("txCopy")

        yield from self.regs.read("tx_status")
        index = self.tx_ring.produce(packet.dma_address, packet.size_bytes, cookie=packet)
        yield from self.regs.write("tx_tail", index)
        watch.lap("ioreg")

        # On-die DMA: the descriptor ring and the freshly written packet
        # buffer are LLC-resident (the CPU just wrote them), so the NIC
        # pulls both over the on-die fabric; a descriptor-ring line that
        # aged out would come from DRAM, which we charge via the MC when
        # zero-copy hands over a cold application buffer.
        yield self.params.nic.dma_setup
        yield self.params.nic.inic_desc_fetch
        if self.zero_copy:
            # Application buffers are not guaranteed LLC-resident.
            yield self.host_mc.read(packet.dma_address, packet.size_bytes)
        else:
            yield self._fabric_dma(packet.size_bytes)
        self.tx_ring.consume()
        watch.lap("txDMA")

        self.allocator.free_page(packet.app_address)
        if dma_buffer is not None:
            self.allocator.free_page(dma_buffer)
        self.stats.count("tx_packets")
        done.set_result(packet)

    # -- RX path --------------------------------------------------------------------

    def _receive_body(self, packet: Packet, done: Future):
        software = self.params.software
        nic = self.params.nic
        watch = Stopwatch(self.sim, packet)

        # MAC + DMA into the DDIO partition of the LLC.
        yield nic.mac_rx_pipeline
        yield nic.dma_setup
        dma_buffer = self.allocator.alloc_page()
        yield nic.inic_desc_fetch
        index = self.rx_ring.produce(dma_buffer, packet.size_bytes, cookie=packet)
        spilled = self.ddio.inject(dma_buffer, packet.size_bytes)
        if spilled:
            # DMA leakage: evicted-unconsumed lines write back to DRAM.
            self.stats.count("ddio_spilled_lines", spilled)
            self.host_mc.write(dma_buffer, spilled * 64)
        yield self._fabric_dma(packet.size_bytes)
        yield nic.inic_desc_fetch  # status writeback
        packet.dma_address = dma_buffer
        watch.lap("rxDMA")

        # Polling (or IRQ): the status word is an LLC hit; the tail
        # update is an on-die register write.
        yield from self.rx_notification_gate(packet, nic.host_poll_read)
        self.rx_ring.consume()
        yield from self.regs.write("rx_tail", index)
        watch.lap("ioreg")

        # SKB + copy out of the LLC; lines the DDIO partition already
        # evicted must come from DRAM instead.
        yield software.rx_skb_alloc
        missed_lines = self.ddio.consume(dma_buffer, packet.size_bytes)
        if missed_lines:
            yield self.host_mc.read(dma_buffer, missed_lines * 64)
        app_page = None
        if self.zero_copy:
            yield software.zero_copy_pin_cost
            packet.app_address = packet.dma_address
        else:
            app_page = self.allocator.alloc_page()
            packet.app_address = app_page
            yield self.copy_cost_ddio(packet.size_bytes, missed_lines)
        watch.lap("rxCopy")

        self.allocator.free_page(dma_buffer)
        if app_page is not None:
            self.allocator.free_page(app_page)
        self.stats.count("rx_packets")
        done.set_result(packet)
