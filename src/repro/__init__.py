"""NetDIMM reproduction: a near-memory NIC architecture simulator.

A from-scratch Python reproduction of *NetDIMM: Low-Latency Near-Memory
Network Interface Architecture* (Alian & Kim, MICRO 2019): a
discrete-event full-system model of servers whose 40GbE NIC lives in
the buffer device of a DDR5 DIMM, plus the PCIe-NIC and integrated-NIC
baselines it is evaluated against, and a harness regenerating every
table and figure of the paper's evaluation.

Quick start — everything routes through the :mod:`repro.api` facade::

    from repro import api

    dnic = api.measure_one_way("dnic", size_bytes=256)
    netdimm = api.measure_one_way("netdimm", size_bytes=256)
    print(f"{1 - netdimm.total_ticks / dnic.total_ticks:.1%} faster")

    result = api.simulate(api.load_spec("examples/incast_mixed.json"))
    print(api.format_report(result))

Package map — substrates: :mod:`repro.sim` (event kernel),
:mod:`repro.dram`, :mod:`repro.pcie`, :mod:`repro.cache`,
:mod:`repro.mem`, :mod:`repro.net`, :mod:`repro.nic`; the paper's
contribution: :mod:`repro.core`; software stack: :mod:`repro.driver`;
fault injection & recovery: :mod:`repro.faults`; workloads:
:mod:`repro.workloads`; evaluation: :mod:`repro.experiments` and
:mod:`repro.analysis`; every calibrated constant: :mod:`repro.params`;
the public facade over all of it: :mod:`repro.api`.
"""

from repro.params import DEFAULT, SystemParams

__version__ = "1.1.0"

__all__ = [
    "DEFAULT",
    "SystemParams",
    "__version__",
    "api",
    "diff_artifacts",
    "format_report",
    "load_spec",
    "run_experiment",
    "simulate",
]


def __getattr__(name):
    # Lazy: `import repro` must stay light (the facade pulls in the
    # experiment layer), but `repro.api` / `repro.simulate` etc. work.
    if name == "api":
        import repro.api as api

        return api
    if name in (
        "load_spec",
        "simulate",
        "run_experiment",
        "diff_artifacts",
        "format_report",
    ):
        import repro.api as api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
