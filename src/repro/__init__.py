"""NetDIMM reproduction: a near-memory NIC architecture simulator.

A from-scratch Python reproduction of *NetDIMM: Low-Latency Near-Memory
Network Interface Architecture* (Alian & Kim, MICRO 2019): a
discrete-event full-system model of servers whose 40GbE NIC lives in
the buffer device of a DDR5 DIMM, plus the PCIe-NIC and integrated-NIC
baselines it is evaluated against, and a harness regenerating every
table and figure of the paper's evaluation.

Quick start::

    from repro.experiments.oneway import measure_one_way

    dnic = measure_one_way("dnic", size_bytes=256)
    netdimm = measure_one_way("netdimm", size_bytes=256)
    print(f"{1 - netdimm.total_ticks / dnic.total_ticks:.1%} faster")

Package map — substrates: :mod:`repro.sim` (event kernel),
:mod:`repro.dram`, :mod:`repro.pcie`, :mod:`repro.cache`,
:mod:`repro.mem`, :mod:`repro.net`, :mod:`repro.nic`; the paper's
contribution: :mod:`repro.core`; software stack: :mod:`repro.driver`;
workloads: :mod:`repro.workloads`; evaluation: :mod:`repro.experiments`
and :mod:`repro.analysis`; every calibrated constant:
:mod:`repro.params`.
"""

from repro.params import DEFAULT, SystemParams

__version__ = "1.0.0"

__all__ = ["DEFAULT", "SystemParams", "__version__"]
