"""The fault injector: spec → deterministic per-attempt verdicts.

Determinism is the whole design.  A naive injector drawing from one
shared RNG stream would entangle fault outcomes with event
interleaving; instead every verdict is drawn from a throwaway
``random.Random`` seeded with the string ``"seed|link|uid|attempt"``.
CPython seeds string keys through SHA-512 (independent of
``PYTHONHASHSEED``), so the same packet attempt on the same link always
meets the same fate — in-process, across processes (``--jobs N``), and
across platforms.

Warmup packets carry ``uid=None`` and are never faulted: warmup exists
to establish connections and steady-state caches, and a lost warmup
would serialize recovery into the measured phase.

The injector also resolves per-link rules and kill schedules.  Pattern
matching (``fnmatch`` over ``"u->v"`` edge keys) runs once per link and
is cached; links whose matched rule has zero probabilities resolve to
"no rule", so a zero-probability chaos run pays only a dict lookup per
hop on the hot path.
"""

from __future__ import annotations

import random
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Tuple

from repro.faults.spec import FaultSpec, LinkFaultSpec
from repro.units import ns

OK = "ok"
DROP = "drop"
CORRUPT = "corrupt"


def stall_delay(windows: Tuple[Tuple[int, int], ...], now: int) -> int:
    """Ticks until ``now`` leaves the stall window covering it (0 if none)."""
    for start, end in windows:
        if start <= now < end:
            return end - now
    return 0


class FaultInjector:
    """Evaluates one scenario's :class:`FaultSpec` deterministically."""

    def __init__(self, spec: FaultSpec, seed: int):
        self.spec = spec
        self.seed = seed
        self.counters: Dict[str, int] = {
            "link_drops": 0,
            "link_corruptions": 0,
            "link_killed": 0,
        }
        # link key -> first matching rule with nonzero probabilities
        # (None = no random faults on this link).
        self._rules: Dict[str, Optional[LinkFaultSpec]] = {}
        # link key -> kill windows in ticks, (start, end) with end = -1
        # meaning "never restored".
        self._kills: Dict[str, List[Tuple[int, int]]] = {}

    # -- resolution (cached per link) ----------------------------------------

    def _rule(self, link: str) -> Optional[LinkFaultSpec]:
        rules = self._rules
        if link in rules:
            return rules[link]
        matched = None
        for rule in self.spec.links:
            if fnmatchcase(link, rule.link):
                if rule.drop_probability or rule.corrupt_probability:
                    matched = rule
                break
        rules[link] = matched
        return matched

    def _kill_windows(self, link: str) -> List[Tuple[int, int]]:
        kills = self._kills
        windows = kills.get(link)
        if windows is None:
            windows = [
                (
                    int(ns(kill.at_ns)),
                    -1 if kill.restore_ns is None else int(ns(kill.restore_ns)),
                )
                for kill in self.spec.kills
                if fnmatchcase(link, kill.link)
            ]
            kills[link] = windows
        return windows

    def stall_windows(self, node: str) -> Tuple[Tuple[int, int], ...]:
        """The node's stall windows as (start, end) ticks, in spec order."""
        return tuple(
            (int(ns(stall.at_ns)), int(ns(stall.at_ns + stall.duration_ns)))
            for stall in self.spec.stalls
            if stall.node == node
        )

    # -- verdicts -------------------------------------------------------------

    def link_verdict(self, link: str, now: int, packet) -> str:
        """What happens to ``packet``'s current attempt on ``link``.

        Returns ``"ok"``, ``"drop"`` (frame vanished: random drop or a
        killed link), or ``"corrupt"`` (frame arrived bit-errored and
        fails the receiver's FCS check).  Packets without a ``uid``
        (warmup) are never faulted.
        """
        if packet.uid is None:
            return OK
        for start, end in self._kill_windows(link):
            if start <= now and (end < 0 or now < end):
                self.counters["link_killed"] += 1
                self.counters["link_drops"] += 1
                return DROP
        rule = self._rule(link)
        if rule is None:
            return OK
        draw = random.Random(
            f"{self.seed}|{link}|{packet.uid}|{packet.attempt}"
        ).random
        if rule.drop_probability and draw() < rule.drop_probability:
            self.counters["link_drops"] += 1
            return DROP
        if rule.corrupt_probability and draw() < rule.corrupt_probability:
            self.counters["link_corruptions"] += 1
            return CORRUPT
        return OK
