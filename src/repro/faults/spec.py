"""Declarative fault descriptions (the ``faults`` section of a spec).

Everything here is a frozen dataclass that round-trips through JSON
with the same strict unknown-field parsing the scenario spec uses, so a
chaos scenario is still just a file: the fault model, the recovery
knobs, and the seed all live in the spec, and the same spec always
yields a byte-identical artifact.

Times are nanoseconds (floats), matching the traffic spec; they are
converted to integer ticks at the point of use.  Link patterns are
``fnmatch`` globs over directional edge keys ``"u->v"`` (host and
switch names as the topology spells them), so ``"*"`` faults every
link and ``"dc0/c0/r0/h0->*"`` faults one host's uplink.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

FAULT_SWITCH_MODES = ("backpressure", "lossy")


@dataclass(frozen=True)
class LinkFaultSpec:
    """Random per-attempt faults on matching links."""

    link: str = "*"
    """``fnmatch`` pattern over directional edge keys ``"u->v"``."""

    drop_probability: float = 0.0
    """Probability a frame vanishes on this link (per attempt)."""

    corrupt_probability: float = 0.0
    """Probability a frame arrives bit-errored (FCS check fails at the
    receiver, so the outcome is also a drop — counted separately)."""

    def __post_init__(self):
        if not self.link:
            raise ValueError("link pattern must be non-empty")
        for name in ("drop_probability", "corrupt_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class LinkKillSpec:
    """Deterministic link death: every frame on a matching link is lost
    from ``at_ns`` until ``restore_ns`` (forever when None)."""

    link: str
    at_ns: float = 0.0
    restore_ns: Optional[float] = None

    def __post_init__(self):
        if not self.link:
            raise ValueError("link pattern must be non-empty")
        if self.at_ns < 0:
            raise ValueError(f"at_ns must be >= 0, got {self.at_ns}")
        if self.restore_ns is not None and self.restore_ns <= self.at_ns:
            raise ValueError(
                f"restore_ns ({self.restore_ns}) must be after at_ns ({self.at_ns})"
            )


@dataclass(frozen=True)
class StallSpec:
    """A NIC/DIMM stall window: the named node starts no TX or RX work
    inside ``[at_ns, at_ns + duration_ns)`` — packets wait it out."""

    node: str
    at_ns: float = 0.0
    duration_ns: float = 0.0

    def __post_init__(self):
        if not self.node:
            raise ValueError("stall needs a node name")
        if self.at_ns < 0:
            raise ValueError(f"at_ns must be >= 0, got {self.at_ns}")
        if self.duration_ns <= 0:
            raise ValueError(
                f"duration_ns must be positive, got {self.duration_ns}"
            )


@dataclass(frozen=True)
class RecoverySpec:
    """Driver-level timeout + retransmission policy."""

    timeout_ns: float = 50_000.0
    """Retransmission timer armed per attempt (~10x an unloaded
    one-way, so a healthy fabric never times out)."""

    backoff: float = 2.0
    """Exponential backoff factor between consecutive timeouts."""

    max_retransmits: int = 5
    """Retransmit budget; exhaustion surfaces the flow as ``lost``."""

    def __post_init__(self):
        if self.timeout_ns <= 0:
            raise ValueError(f"timeout_ns must be positive, got {self.timeout_ns}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_retransmits < 0:
            raise ValueError(
                f"max_retransmits must be >= 0, got {self.max_retransmits}"
            )


@dataclass(frozen=True)
class FaultSpec:
    """The complete fault model for one scenario."""

    links: Tuple[LinkFaultSpec, ...] = ()
    """Random link faults; the first pattern matching an edge wins."""

    kills: Tuple[LinkKillSpec, ...] = ()
    stalls: Tuple[StallSpec, ...] = ()
    switch_drop_mode: str = "backpressure"
    """What a full switch output queue does to the next frame:
    ``backpressure`` stalls ingress (lossless PFC, the default);
    ``lossy`` drops it on the floor and lets recovery deal with it."""

    recovery: RecoverySpec = field(default_factory=RecoverySpec)

    def __post_init__(self):
        if self.switch_drop_mode not in FAULT_SWITCH_MODES:
            raise ValueError(
                f"unknown switch_drop_mode {self.switch_drop_mode!r} "
                f"(expected one of {FAULT_SWITCH_MODES})"
            )

    # -- JSON round trip ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering (tuples stay tuples; the scenario spec's
        ``_normalize`` flattens them on save)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "FaultSpec":
        """Parse a faults document (inverse of :meth:`to_dict`)."""
        known = {f.name for f in fields(cls)}
        payload: Dict[str, Any] = {}
        for key, value in document.items():
            if key not in known:
                raise ValueError(f"unknown FaultSpec field: {key!r}")
            payload[key] = value
        payload["links"] = tuple(
            _from_mapping(LinkFaultSpec, item) for item in payload.get("links", ())
        )
        payload["kills"] = tuple(
            _from_mapping(LinkKillSpec, item) for item in payload.get("kills", ())
        )
        payload["stalls"] = tuple(
            _from_mapping(StallSpec, item) for item in payload.get("stalls", ())
        )
        if "recovery" in payload:
            payload["recovery"] = _from_mapping(RecoverySpec, payload["recovery"])
        return cls(**payload)


def _from_mapping(cls, document: Mapping[str, Any]):
    """Build a fault dataclass from a mapping, rejecting unknown keys."""
    known = {f.name for f in fields(cls)}
    payload = {}
    for key, value in document.items():
        if key not in known:
            raise ValueError(f"unknown {cls.__name__} field: {key!r}")
        payload[key] = value
    return cls(**payload)
