"""Seeded, deterministic fault injection and recovery.

The paper's latency claims assume a lossless fabric; this package
models what happens when it isn't.  A :class:`FaultSpec` (attached to a
:class:`~repro.scenario.spec.ScenarioSpec`, JSON-round-trippable)
describes per-link drop/bit-error probability, the switches'
queue-overflow policy (lossy vs. the default PFC-style backpressure),
NIC/DIMM stall windows, and deterministic "kill link X at tick T"
schedules.  A :class:`FaultInjector` turns the spec into per-packet
verdicts using hash-keyed RNG streams, so whether a given attempt is
dropped depends only on ``(seed, link, packet, attempt)`` — never on
event interleaving — which is what keeps seeded fault scenarios
byte-identical between serial and parallel runs.

Recovery lives in the driver layer
(:meth:`repro.driver.node.ServerNode.send_reliably`): a cancellable
retransmission timer per attempt, exponential backoff, and a retransmit
budget whose exhaustion surfaces as a per-flow ``lost`` outcome.

When a scenario carries no ``FaultSpec``, none of this is consulted:
the zero-fault event sequence is byte-identical to a build without
this package.
"""

from repro.faults.engine import FaultInjector, stall_delay
from repro.faults.spec import (
    FAULT_SWITCH_MODES,
    FaultSpec,
    LinkFaultSpec,
    LinkKillSpec,
    RecoverySpec,
    StallSpec,
)

__all__ = [
    "FAULT_SWITCH_MODES",
    "FaultInjector",
    "FaultSpec",
    "LinkFaultSpec",
    "LinkKillSpec",
    "RecoverySpec",
    "StallSpec",
    "stall_delay",
]
