"""Event-driven PCIe link: transactions over a contended full-duplex link.

Latency anatomy, after [59] Fig. 4:

* **posted write** (``MWr``): serialize → propagate.  The producer sees
  only the serialization (and a small issue cost for CPU doorbells);
  delivery completes one propagation later.
* **non-posted read** (``MRd``): request TLP serialize → propagate →
  completer internal latency → completion TLP(s) serialize → propagate
  back.  An x8 Gen3 NIC register read measures ~900 ns round trip [59];
  our Gen4 parameters land slightly below that.
* **bulk DMA**: reads pipeline MRRS-sized requests so steady-state
  throughput is bandwidth-limited; one request RTT is paid up front.

Each direction of the link is a FIFO resource, so concurrent DMA and
doorbell traffic queue behind each other exactly as they would on the
wire.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, Optional

from repro.params import PCIeParams
from repro.pcie.tlp import TLPModel
from repro.sim import Component, Future, Resource, Simulator
from repro.units import cachelines


class PCIeLink(Component):
    """One PCIe link between the root complex (host) and an endpoint."""

    def __init__(self, sim: Simulator, name: str, params: Optional[PCIeParams] = None):
        super().__init__(sim, name)
        self.params = params or PCIeParams()
        self.tlp = TLPModel(self.params)
        self._downstream = Resource(sim, name=f"{name}.down")  # host -> device
        self._upstream = Resource(sim, name=f"{name}.up")  # device -> host
        # TLP serialization is pure arithmetic on the link config; DMA
        # traffic reuses a handful of sizes, so memoize per size (and
        # the header-only TLP outright).
        self._ser_cache: Dict[int, int] = {}
        self._header_ticks = self.tlp.header_serialization_ticks()
        # Batched drain mode (see repro.sim.engine): direction-resource
        # claims are inlined into the transaction bodies instead of
        # delegating through Resource.use — identical event sequence,
        # one fewer generator frame per link occupancy.
        self._batch = bool(sim.batch)

    def _ser(self, size_bytes: int) -> int:
        ticks = self._ser_cache.get(size_bytes)
        if ticks is None:
            ticks = self.tlp.serialization_ticks(size_bytes)
            self._ser_cache[size_bytes] = ticks
        return ticks

    def _direction(self, toward_device: bool) -> Resource:
        return self._downstream if toward_device else self._upstream

    # -- basic transactions ---------------------------------------------------

    def posted_write(self, size_bytes: int, toward_device: bool = True) -> Future:
        """A posted memory write; future completes on delivery."""
        sim = self.sim
        done = sim.future()
        sim.spawn(
            self._posted_body(size_bytes, toward_device, done),
            name=f"{self.name}.mwr" if sim.named else "",
        )
        return done

    def _posted_body(self, size_bytes: int, toward_device: bool, done: Future):
        sim = self.sim
        start = sim._now
        ticks = self._ser(size_bytes) if size_bytes else self._header_ticks
        direction = self._downstream if toward_device else self._upstream
        if self._batch:
            # Inlined Resource.use on the link direction — the exact
            # acquire/yield/recycle/hold/release sequence of
            # repro.sim.resource.Resource.use without the delegated
            # generator frame.
            pool = sim._future_pool
            future = pool.pop() if pool else Future(sim)
            request_time = sim._now
            if not direction._busy and not direction._waiters:
                direction._busy = True
                direction.total_acquisitions += 1
                future.set_result(request_time)
            else:
                direction._ticket += 1
                insort(direction._waiters, (0, direction._ticket, future))
            granted_at = yield future
            sim.recycle(future)
            direction.total_wait_ticks += granted_at - request_time
            if ticks:
                yield ticks
            direction.release()
        else:
            yield from direction.use(ticks)
        yield self.params.propagation
        self.stats.count("posted_writes")
        self.stats.sample("posted_write_ns", (self.now - start) / 1000)
        done.set_result(None)

    def read(self, size_bytes: int, from_device: bool = False) -> Future:
        """A non-posted read; future completes when all data has returned.

        ``from_device=False`` is a device reading host memory (the common
        DMA direction); ``True`` is the host reading device memory.
        """
        sim = self.sim
        done = sim.future()
        sim.spawn(self._read_body(size_bytes, from_device, done),
                  name=f"{self.name}.mrd" if sim.named else "")
        return done

    def _read_body(self, size_bytes: int, from_device: bool, done: Future):
        sim = self.sim
        start = sim._now
        request_direction = self._direction(toward_device=from_device)
        completion_direction = self._direction(toward_device=not from_device)
        first_chunk = min(size_bytes, self.params.max_read_request_size)
        remaining = size_bytes - first_chunk
        if self._batch:
            # Inlined Resource.use on each link direction (see
            # _posted_body): request TLP, then the pipelined MRRS
            # completion chunks, identical event sequence to the
            # delegating path below.
            pool = sim._future_pool
            holds = (
                (request_direction, self._header_ticks),
                (completion_direction, self._ser(first_chunk)),
            )
            if remaining > 0:
                # Remaining chunks stream back-to-back at link bandwidth.
                holds += ((completion_direction, self._ser(remaining)),)
            for index, (direction, ticks) in enumerate(holds):
                future = pool.pop() if pool else Future(sim)
                request_time = sim._now
                if not direction._busy and not direction._waiters:
                    direction._busy = True
                    direction.total_acquisitions += 1
                    future.set_result(request_time)
                else:
                    direction._ticket += 1
                    insort(direction._waiters, (0, direction._ticket, future))
                granted_at = yield future
                sim.recycle(future)
                direction.total_wait_ticks += granted_at - request_time
                if ticks:
                    yield ticks
                direction.release()
                if index == 0:
                    # First request's full round trip: propagation out,
                    # completer internal latency, completion back.
                    yield self.params.propagation
                    yield self.params.completion_overhead
        else:
            # Issue the first request and wait its full round trip;
            # subsequent MRRS chunks are pipelined, so they only add
            # serialization time.
            yield from request_direction.use(self._header_ticks)
            yield self.params.propagation
            yield self.params.completion_overhead
            yield from completion_direction.use(self._ser(first_chunk))
            if remaining > 0:
                # Remaining chunks stream back-to-back at link bandwidth.
                yield from completion_direction.use(self._ser(remaining))
        yield self.params.propagation
        self.stats.count("reads")
        self.stats.sample("read_ns", (self.now - start) / 1000)
        done.set_result(None)

    # -- CPU-visible register access ------------------------------------------

    def mmio_read(self) -> Future:
        """CPU load from a device register: a blocking full round trip."""
        sim = self.sim
        done = sim.future()
        sim.spawn(self._mmio_read_body(done),
                  name=f"{self.name}.mmio_rd" if sim.named else "")
        return done

    def _mmio_read_body(self, done: Future):
        start = self.now
        yield self.params.mmio_read_extra
        yield self.read(4, from_device=True)
        self.stats.count("mmio_reads")
        self.stats.sample("mmio_read_ns", (self.now - start) / 1000)
        done.set_result(None)

    def mmio_write_cpu_cost(self) -> int:
        """Ticks the CPU is occupied issuing a posted register write.

        The write itself continues asynchronously (:meth:`posted_write`);
        the CPU only pays the write-buffer drain cost.
        """
        return self.params.doorbell_write_cost

    def mmio_write(self) -> Future:
        """Post a register write; future completes when it reaches the device."""
        return self.posted_write(0, toward_device=True)

    # -- DMA pipelining -----------------------------------------------------------

    def dma_pipeline_extra(self, size_bytes: int) -> int:
        """Extra latency for the 2nd..Nth cachelines of a DMA transfer.

        The engine issues line-granular requests with limited non-posted
        credits: the first few extra lines cost
        ``dma_line_cost_initial`` each, lines past the pipeline
        breakpoint stream at ``dma_line_cost_steady``.  This reproduces
        the steep-then-flattening latency-vs-size slope of the paper's
        dNIC (Fig. 11 left)."""
        lines = cachelines(max(size_bytes, 1))
        extra = lines - 1
        if extra <= 0:
            return 0
        initial = min(extra, self.params.dma_pipeline_breakpoint - 1)
        steady = extra - initial
        return (
            initial * self.params.dma_line_cost_initial
            + steady * self.params.dma_line_cost_steady
        )

    # -- analytical helpers -----------------------------------------------------

    def dma_read_latency(self, size_bytes: int) -> int:
        """Closed-form unloaded latency of a device DMA read of host memory."""
        first_chunk = min(size_bytes, self.params.max_read_request_size)
        total = (
            self.tlp.header_serialization_ticks()
            + 2 * self.params.propagation
            + self.params.completion_overhead
            + self.tlp.serialization_ticks(first_chunk)
        )
        remaining = size_bytes - first_chunk
        if remaining > 0:
            total += self.tlp.serialization_ticks(remaining)
        return total

    def dma_write_latency(self, size_bytes: int) -> int:
        """Closed-form unloaded latency of a device DMA write to host memory."""
        return self.tlp.serialization_ticks(size_bytes) + self.params.propagation

    def mmio_read_latency(self) -> int:
        """Closed-form unloaded latency of a CPU register read."""
        return (
            self.params.mmio_read_extra
            + self.tlp.header_serialization_ticks()
            + 2 * self.params.propagation
            + self.params.completion_overhead
            + self.tlp.serialization_ticks(4)
        )
