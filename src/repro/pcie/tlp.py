"""Transaction-layer-packet arithmetic for PCIe transfers.

Implements the wire-overhead model of [59] Sec. 2/3: every TLP carries
physical-layer framing, a data-link-layer sequence number and LCRC, and
a transaction-layer header; payloads are segmented at the link's MPS
(writes/completions) or MRRS (read requests).  The *usable* fraction of
raw link bandwidth follows directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import PCIeParams


@dataclass(frozen=True)
class TLPModel:
    """Byte-accurate TLP segmentation for one link configuration."""

    params: PCIeParams

    @property
    def raw_bytes_per_ps(self) -> float:
        """Raw link bandwidth after encoding (bytes per picosecond)."""
        lane_bytes_per_s = (
            self.params.gts_per_lane * 1e9 * self.params.encoding_efficiency / 8
        )
        return self.params.lanes * lane_bytes_per_s / 1e12

    def data_tlp_count(self, size_bytes: int) -> int:
        """Number of data-bearing TLPs for a payload of ``size_bytes``."""
        if size_bytes <= 0:
            return 0
        return -(-size_bytes // self.params.max_payload_size)

    def read_request_count(self, size_bytes: int) -> int:
        """Number of read-request TLPs to fetch ``size_bytes`` (MRRS split)."""
        if size_bytes <= 0:
            return 0
        return -(-size_bytes // self.params.max_read_request_size)

    def wire_bytes(self, size_bytes: int) -> int:
        """Bytes on the wire for a data transfer, including TLP overhead."""
        return size_bytes + self.data_tlp_count(size_bytes) * self.params.tlp_header_bytes

    def header_only_bytes(self) -> int:
        """Bytes on the wire for a header-only TLP (read request, doorbell)."""
        # A header-only TLP still carries framing + seq + header + LCRC,
        # plus the 4-byte (1 DW) minimum that doorbell writes move.
        return self.params.tlp_header_bytes + 4

    def protocol_overhead_fraction(self, size_bytes: int) -> float:
        """Fraction of wire bytes that is protocol overhead, not payload."""
        wire = self.wire_bytes(size_bytes)
        if wire == 0:
            return 0.0
        return 1 - size_bytes / wire

    def effective_bytes_per_ps(self, size_bytes: int) -> float:
        """Goodput for payloads of the given size."""
        wire = self.wire_bytes(size_bytes)
        if wire == 0 or size_bytes <= 0:
            return self.raw_bytes_per_ps
        return self.raw_bytes_per_ps * size_bytes / wire

    def serialization_ticks(self, size_bytes: int) -> int:
        """Time to serialize a data transfer (payload + TLP overhead)."""
        wire = self.wire_bytes(size_bytes)
        if wire == 0:
            return 0
        return max(1, round(wire / self.raw_bytes_per_ps))

    def header_serialization_ticks(self) -> int:
        """Time to serialize one header-only TLP."""
        return max(1, round(self.header_only_bytes() / self.raw_bytes_per_ps))
