"""PCIe interconnect model.

An analytical TLP-level model of a PCIe link in the style the paper
cites: Neugebauer et al., "Understanding PCIe performance for end host
networking" [59], and Alian et al.'s gem5 PCIe model [20].  It produces
per-transaction latencies (posted writes, non-posted reads, MMIO
accesses) and bandwidth-limited bulk DMA transfer times, including the
per-TLP protocol overhead that makes PCIe the latency bottleneck the
paper is attacking.
"""

from repro.pcie.link import PCIeLink
from repro.pcie.tlp import TLPModel

__all__ = ["PCIeLink", "TLPModel"]
